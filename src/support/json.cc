#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.h"

namespace hpcmixp::support::json {

using support::fatal;
using support::strCat;

Value
Value::null()
{
    return Value();
}

Value
Value::boolean(bool b)
{
    Value v;
    v.kind_ = ValueKind::Boolean;
    v.bool_ = b;
    return v;
}

Value
Value::number(double n)
{
    Value v;
    v.kind_ = ValueKind::Number;
    v.number_ = n;
    return v;
}

Value
Value::string(std::string s)
{
    Value v;
    v.kind_ = ValueKind::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind_ = ValueKind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind_ = ValueKind::Object;
    return v;
}

bool
Value::asBool() const
{
    if (kind_ != ValueKind::Boolean)
        fatal("json: asBool() on a non-boolean");
    return bool_;
}

double
Value::asNumber() const
{
    if (kind_ != ValueKind::Number)
        fatal("json: asNumber() on a non-number");
    return number_;
}

long
Value::asLong() const
{
    return static_cast<long>(asNumber());
}

const std::string&
Value::asString() const
{
    if (kind_ != ValueKind::String)
        fatal("json: asString() on a non-string");
    return string_;
}

const std::vector<Value>&
Value::items() const
{
    if (kind_ != ValueKind::Array)
        fatal("json: items() on a non-array");
    return items_;
}

void
Value::push(Value v)
{
    if (kind_ != ValueKind::Array)
        fatal("json: push() on a non-array");
    items_.push_back(std::move(v));
}

const std::vector<std::string>&
Value::keys() const
{
    if (kind_ != ValueKind::Object)
        fatal("json: keys() on a non-object");
    return keys_;
}

bool
Value::has(const std::string& key) const
{
    return kind_ == ValueKind::Object && members_.count(key) > 0;
}

const Value&
Value::at(const std::string& key) const
{
    if (!has(key))
        fatal(strCat("json: missing key '", key, "'"));
    return members_.at(key);
}

Value&
Value::set(const std::string& key, Value v)
{
    if (kind_ != ValueKind::Object)
        fatal("json: set() on a non-object");
    if (!members_.count(key))
        keys_.push_back(key);
    return members_[key] = std::move(v);
}

namespace {

void
escapeInto(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string& out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void
Value::dumpTo(std::string& out, int indent, int depth) const
{
    switch (kind_) {
      case ValueKind::Null:
        out += "null";
        break;
      case ValueKind::Boolean:
        out += bool_ ? "true" : "false";
        break;
      case ValueKind::Number: {
        if (std::isnan(number_) || std::isinf(number_)) {
            out += "null"; // JSON has no NaN/Inf
            break;
        }
        char buf[40];
        if (number_ == std::floor(number_) &&
            std::abs(number_) < 1e15) {
            std::snprintf(buf, sizeof buf, "%.0f", number_);
        } else {
            std::snprintf(buf, sizeof buf, "%.17g", number_);
        }
        out += buf;
        break;
      }
      case ValueKind::String:
        escapeInto(out, string_);
        break;
      case ValueKind::Array: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case ValueKind::Object: {
        out += '{';
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            escapeInto(out, keys_[i]);
            out += indent > 0 ? ": " : ":";
            members_.at(keys_[i]).dumpTo(out, indent, depth + 1);
        }
        if (!keys_.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

class JsonParser {
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    Value
    run()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            error("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    error(const std::string& what)
    {
        fatal(strCat("json: ", what, " at offset ", pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            error("unexpected end of input");
        return text_[pos_];
    }

    bool
    consume(const char* literal)
    {
        skipWs();
        std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Value::string(parseString());
        if (consume("true"))
            return Value::boolean(true);
        if (consume("false"))
            return Value::boolean(false);
        if (consume("null"))
            return Value::null();
        return parseNumber();
    }

    Value
    parseObject()
    {
        consume("{");
        Value obj = Value::object();
        if (consume("}"))
            return obj;
        for (;;) {
            if (peek() != '"')
                error("expected a string key");
            std::string key = parseString();
            if (!consume(":"))
                error("expected ':'");
            obj.set(key, parseValue());
            if (consume(","))
                continue;
            if (consume("}"))
                return obj;
            error("expected ',' or '}'");
        }
    }

    Value
    parseArray()
    {
        consume("[");
        Value arr = Value::array();
        if (consume("]"))
            return arr;
        for (;;) {
            arr.push(parseValue());
            if (consume(","))
                continue;
            if (consume("]"))
                return arr;
            error("expected ',' or ']'");
        }
    }

    std::string
    parseString()
    {
        skipWs();
        if (text_[pos_] != '"')
            error("expected '\"'");
        ++pos_;
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                error("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    error("bad \\u escape");
                std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                long code = std::strtol(hex.c_str(), nullptr, 16);
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else {
                    // Minimal UTF-8 encoding; surrogates unsupported.
                    if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                    }
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                error("unknown escape");
            }
        }
        if (pos_ >= text_.size())
            error("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    Value
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool any = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
            any = true;
        }
        if (!any)
            error("expected a value");
        std::string body = text_.substr(start, pos_ - start);
        char* end = nullptr;
        double v = std::strtod(body.c_str(), &end);
        if (end != body.c_str() + body.size())
            error(strCat("malformed number '", body, "'"));
        return Value::number(v);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string& text)
{
    return JsonParser(text).run();
}

} // namespace hpcmixp::support::json
