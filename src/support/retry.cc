#include "support/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace hpcmixp::support {

double
backoffDelaySeconds(const BackoffPolicy& policy, std::size_t attempt,
                    Pcg32& rng)
{
    double base = policy.initialSeconds *
                  std::pow(policy.multiplier,
                           static_cast<double>(attempt));
    base = std::min(base, policy.maxSeconds);
    // Symmetric jitter in [-jitterFraction, +jitterFraction) of base.
    double jitter =
        base * policy.jitterFraction * (2.0 * rng.nextDouble() - 1.0);
    return std::max(0.0, base + jitter);
}

void
sleepForSeconds(double seconds)
{
    if (seconds <= 0.0)
        return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

} // namespace hpcmixp::support
