#ifndef HPCMIXP_SUPPORT_SHM_ARENA_H_
#define HPCMIXP_SUPPORT_SHM_ARENA_H_

/**
 * @file
 * Shared-memory result arena for sandboxed evaluation (DESIGN.md §13).
 *
 * A ShmArena is a fixed-size region of anonymous shared memory
 * (MAP_SHARED | MAP_ANONYMOUS) created by the parent *before* fork(),
 * so both sides address the same physical pages without any file
 * descriptor, name registration or unlink bookkeeping — there is
 * nothing to leak across hundreds of sandboxed evaluations.
 *
 * The layout is a fixed header followed by an opaque payload,
 * checksummed like an AppendLog record:
 *
 *     [ magic | capacity | payloadSize | fnv1a64(payload) | state ]
 *     [ payload bytes ... up to capacity ]
 *
 * The child writes the payload, then the checksum, then flips state to
 * Committed as its very last store. The parent validates only after
 * reaping the child (waitpid provides the happens-before edge), so a
 * child that died mid-write — between any two stores — leaves either
 * state != Committed or a checksum mismatch, never a silently torn
 * result. read() reports such arenas as corrupt.
 */

#include <cstddef>
#include <cstdint>

namespace hpcmixp::support {

/** One parent/child shared result slot; see file comment. */
class ShmArena {
  public:
    /** Map an arena able to hold @p capacity payload bytes. */
    explicit ShmArena(std::size_t capacity);
    ~ShmArena();

    ShmArena(const ShmArena&) = delete;
    ShmArena& operator=(const ShmArena&) = delete;

    /** Maximum payload size in bytes. */
    std::size_t capacity() const;

    /** Clear the committed state (parent, before each fork). */
    void reset();

    /** Publish @p size payload bytes (child; the commit protocol in
     *  the file comment). @p size must fit capacity(). */
    void commit(const void* data, std::size_t size);

    /** True when a complete, checksum-valid payload is present. */
    bool committed() const;

    /** Size of the committed payload; 0 when not committed. */
    std::size_t payloadSize() const;

    /**
     * Copy the committed payload into @p out. Returns false — without
     * touching @p out — when the arena was never committed, the
     * committed size differs from @p size, or the checksum does not
     * match the payload (the child died mid-write).
     */
    bool read(void* out, std::size_t size) const;

    /** Raw payload pointer; for corruption tests and in-place
     *  writers. Bytes changed after commit() fail the checksum. */
    void* payload();

  private:
    struct Header;
    Header* header() const;
    unsigned char* payloadBase() const;

    void* map_ = nullptr;
    std::size_t mapBytes_ = 0;
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_SHM_ARENA_H_
