#ifndef HPCMIXP_SUPPORT_MEMO_LOG_H_
#define HPCMIXP_SUPPORT_MEMO_LOG_H_

/**
 * @file
 * Crash-safe append-only record log.
 *
 * The persistence layer under the cross-run evaluation memo-cache
 * (DESIGN.md, Section 12). A log file is a header line followed by one
 * checksummed record per line:
 *
 *   <header>\n
 *   <fnv1a32-hex> <record>\n
 *   ...
 *
 * A record is durable once its newline is on disk; a record whose line
 * is missing the terminator or whose checksum does not match — the
 * signature of a crash mid-append — is a *partial tail*: load()
 * truncates the file back to the last durable record and the log
 * continues from there. A header that does not match the expected one
 * (the caller's fingerprint changed) resets the file: stale records
 * must not survive an invalidated key space.
 *
 * Appends are serialized by the caller (MemoTable holds one append
 * mutex per log); the class itself performs no locking.
 */

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace hpcmixp::support {

/** FNV-1a over @p size bytes at @p data. */
std::uint64_t fnv1a64(const void* data, std::size_t size);

/** FNV-1a over the bytes of @p text. */
std::uint64_t fnv1a64(const std::string& text);

/** An append-only log of newline-free records with crash recovery. */
class AppendLog {
  public:
    /**
     * Open (or create) the log at @p path, expecting @p header on the
     * first line. Loads every durable record, truncates a partial
     * trailing record, and resets the file when the header mismatches.
     */
    AppendLog(std::string path, std::string header);

    AppendLog(const AppendLog&) = delete;
    AppendLog& operator=(const AppendLog&) = delete;

    /** Records recovered at open time, in append order. */
    const std::vector<std::string>& records() const { return records_; }

    /** Release the loaded records (the caller has indexed them). */
    std::vector<std::string> takeRecords() { return std::move(records_); }

    /** True when a header mismatch discarded the previous contents. */
    bool reset() const { return reset_; }

    /** Bytes of partial trailing record dropped at open time. */
    std::size_t truncatedBytes() const { return truncatedBytes_; }

    /** Append one record (must not contain newlines) and flush. */
    void append(const std::string& record);

    /** Path of the backing file. */
    const std::string& path() const { return path_; }

  private:
    void load(const std::string& header);

    std::string path_;
    std::ofstream out_;
    std::vector<std::string> records_;
    bool reset_ = false;
    std::size_t truncatedBytes_ = 0;
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_MEMO_LOG_H_
