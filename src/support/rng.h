#ifndef HPCMIXP_SUPPORT_RNG_H_
#define HPCMIXP_SUPPORT_RNG_H_

/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * All randomness in the suite (synthetic workload data, genetic-algorithm
 * decisions) flows through these generators so that every experiment is
 * reproducible from a seed. We implement SplitMix64 (seeding / cheap
 * streams) and PCG32 (main generator) rather than using std::mt19937 so
 * the bit streams are identical across standard libraries.
 */

#include <cstdint>
#include <vector>

namespace hpcmixp::support {

/** SplitMix64: tiny, fast 64-bit generator, good for seeding. */
class SplitMix64 {
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/** PCG32 (XSH-RR): small, statistically strong 32-bit generator. */
class Pcg32 {
  public:
    /** Construct from a seed and an optional stream id. */
    explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0);

    /** Next 32 random bits. */
    std::uint32_t nextU32();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal deviate (Box-Muller, no caching). */
    double normal();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/** Fill @p out with uniform values in [lo, hi). */
void fillUniform(Pcg32& rng, std::vector<double>& out, double lo, double hi);

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_RNG_H_
