#include "support/worker_pool.h"

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstring>

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/logging.h"
#include "support/shm_arena.h"
#include "support/timer.h"

namespace hpcmixp::support {

namespace {

/** Job-ring operations (first 4 payload bytes of the job arena). */
constexpr std::uint32_t kOpJob = 1;
constexpr std::uint32_t kOpStop = 2;

/** Grace period a stopping worker gets before SIGKILL. */
constexpr double kStopGraceSeconds = 2.0;

void
writeDoorbell(int fd)
{
    const std::uint64_t one = 1;
    ssize_t n;
    do {
        n = ::write(fd, &one, sizeof one);
    } while (n < 0 && errno == EINTR);
}

/** Blocking doorbell read; returns false on EOF/error (fd closed). */
bool
readDoorbell(int fd)
{
    std::uint64_t ticks = 0;
    ssize_t n;
    do {
        n = ::read(fd, &ticks, sizeof ticks);
    } while (n < 0 && errno == EINTR);
    return n == static_cast<ssize_t>(sizeof ticks);
}

/** Drop any pending doorbell ticks (before re-forking a worker). */
void
drainDoorbell(int fd)
{
    std::uint64_t ticks = 0;
    // EFD_NONBLOCK is not set on these descriptors, so probe first.
    struct pollfd pfd = {fd, POLLIN, 0};
    while (::poll(&pfd, 1, 0) > 0 && (pfd.revents & POLLIN) != 0)
        if (::read(fd, &ticks, sizeof ticks) < 0 && errno != EINTR)
            break;
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

/**
 * One worker slot. The arenas and parent-side eventfds are created
 * once and survive worker deaths: a re-forked child inherits the same
 * MAP_SHARED pages and descriptor table entries, so respawning costs
 * one fork(), not a teardown-and-rebuild, and the pool's descriptor
 * footprint never changes after construction.
 */
struct WorkerPool::Worker {
    std::unique_ptr<ShmArena> jobRing;
    std::unique_ptr<ShmArena> resultRing;
    int jobFd = -1;  ///< parent -> child: a job (or stop) is committed
    int doneFd = -1; ///< child -> parent: a result is committed
    int pidFd = -1;  ///< polls readable when the child dies
    pid_t pid = -1;
    bool alive = false;
    bool busy = false;
};

WorkerPool::WorkerPool(std::size_t workers, std::size_t jobCapacity,
                       std::size_t resultCapacity, Handler handler)
    : handler_(std::move(handler)),
      jobCapacity_(jobCapacity),
      resultCapacity_(resultCapacity)
{
    HPCMIXP_ASSERT(workers >= 1, "WorkerPool needs at least one worker");
    HPCMIXP_ASSERT(handler_ != nullptr, "WorkerPool needs a handler");
    workers_.reserve(workers);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < workers; ++i) {
        auto w = std::make_unique<Worker>();
        w->jobRing = std::make_unique<ShmArena>(sizeof(std::uint32_t) +
                                                jobCapacity_);
        w->resultRing = std::make_unique<ShmArena>(
            sizeof(std::uint32_t) + resultCapacity_);
        w->jobFd = ::eventfd(0, 0);
        w->doneFd = ::eventfd(0, 0);
        if (w->jobFd < 0 || w->doneFd < 0)
            fatal(strCat("eventfd for sandbox worker ", i,
                         " failed: errno=", errno));
        workers_.push_back(std::move(w));
    }
    // Fork after every ring and doorbell exists, so each child
    // inherits all of its slot's machinery (and only ever touches its
    // own). A spawn failure here is not fatal: the slot retries on its
    // first dispatch and run() degrades to SpawnFailed only when no
    // slot can be brought up at all.
    for (auto& w : workers_)
        spawnLocked(*w);
}

WorkerPool::~WorkerPool()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& w : workers_) {
        stopWorker(*w);
        closeFd(w->jobFd);
        closeFd(w->doneFd);
        closeFd(w->pidFd);
    }
}

/**
 * Fork one worker onto its (already existing) rings and doorbells.
 * Caller holds mutex_. Returns false when fork() fails; the slot is
 * left dead and the failure counted.
 */
bool
WorkerPool::spawnLocked(Worker& w)
{
    // A previous incumbent may have died between the parent's doorbell
    // kick and its own read(), leaving a stale tick (and a stale job)
    // behind; a fresh worker must start from silence.
    drainDoorbell(w.jobFd);
    drainDoorbell(w.doneFd);
    w.jobRing->reset();
    w.resultRing->reset();
    closeFd(w.pidFd);

    ++stats_.forks;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ++stats_.spawnFailures;
        w.pid = -1;
        w.alive = false;
        return false;
    }
    if (pid == 0) {
        // Worker loop: block on the job doorbell, run the handler on
        // the committed job, commit [status | result] and ring back.
        // _exit discipline as in runInFork — no atexit handlers, no
        // stdio flush of buffers inherited from the parent.
        std::vector<unsigned char> job(sizeof(std::uint32_t) +
                                       jobCapacity_);
        std::vector<unsigned char> result(sizeof(std::uint32_t) +
                                          resultCapacity_);
        for (;;) {
            if (!readDoorbell(w.jobFd))
                ::_exit(0); // parent closed the doorbell: shut down
            const std::size_t jobBytes = w.jobRing->payloadSize();
            if (jobBytes < sizeof(std::uint32_t) ||
                !w.jobRing->read(job.data(), jobBytes))
                ::_exit(kChildBodyThrew); // torn job: unservable
            std::uint32_t op;
            std::memcpy(&op, job.data(), sizeof op);
            if (op == kOpStop)
                ::_exit(0);
            std::uint32_t status = 0;
            std::size_t written = 0;
            try {
                written = handler_(job.data() + sizeof op,
                                   jobBytes - sizeof op,
                                   result.data() + sizeof status,
                                   resultCapacity_);
            } catch (...) {
                status = static_cast<std::uint32_t>(kChildBodyThrew);
                written = 0;
            }
            if (written > resultCapacity_) {
                status = static_cast<std::uint32_t>(kChildBodyThrew);
                written = 0;
            }
            std::memcpy(result.data(), &status, sizeof status);
            w.resultRing->commit(result.data(), sizeof status + written);
            writeDoorbell(w.doneFd);
        }
    }

    w.pid = pid;
    w.pidFd = pidfdOpen(pid);
    w.alive = true;
    return true;
}

/**
 * Ask one worker to stop (stop op + doorbell), wait out the grace
 * period, SIGKILL a straggler, and reap. Caller holds mutex_.
 */
void
WorkerPool::stopWorker(Worker& w)
{
    if (!w.alive)
        return;
    w.jobRing->reset();
    const std::uint32_t op = kOpStop;
    w.jobRing->commit(&op, sizeof op);
    writeDoorbell(w.jobFd);

    bool exited = false;
    if (w.pidFd >= 0) {
        struct pollfd pfd = {w.pidFd, POLLIN, 0};
        const int graceMs =
            static_cast<int>(kStopGraceSeconds * 1e3);
        int rc;
        do {
            rc = ::poll(&pfd, 1, graceMs);
        } while (rc < 0 && errno == EINTR);
        exited = rc > 0;
    }
    if (!exited && w.pidFd >= 0)
        ::kill(w.pid, SIGKILL);
    // Without a pidfd, fall straight through to the blocking reap: the
    // stop op is unconditional, so the worst case is the grace period.
    while (::waitpid(w.pid, nullptr, 0) < 0 && errno == EINTR) {
    }
    w.alive = false;
    w.pid = -1;
}

PoolOutcome
WorkerPool::run(const void* job, std::size_t jobSize, void* result,
                std::size_t resultSize, double deadlineSeconds)
{
    HPCMIXP_ASSERT(jobSize <= jobCapacity_,
                   strCat("pool job of ", jobSize,
                          " bytes exceeds ring capacity ", jobCapacity_));
    WallTimer timer;
    PoolOutcome out;

    // Acquire the lowest-indexed free worker; lowest-index-first keeps
    // a serial dispatcher's worker choice deterministic (tests rely on
    // "kill pids[0], the next dispatch hits it"). A dead slot is
    // respawned at acquire time, so one failed re-fork never bricks
    // the slot for the rest of the campaign.
    Worker* w = nullptr;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            bool anyAlive = false;
            for (auto& slot : workers_) {
                if (slot->busy)
                    continue;
                if (!slot->alive && !spawnLocked(*slot))
                    continue;
                w = slot.get();
                break;
            }
            if (w != nullptr)
                break;
            for (auto& slot : workers_)
                anyAlive = anyAlive || slot->alive;
            if (!anyAlive) {
                // Every slot is dead and unspawnable right now.
                out.exit = ChildExit::SpawnFailed;
                out.detail = errno;
                out.wallSeconds = timer.seconds();
                return out;
            }
            freeCv_.wait(lock);
        }
        w->busy = true;
        ++stats_.dispatched;
    }

    // Dispatch: commit [kOpJob | job bytes] and ring the doorbell. The
    // arenas are quiescent here — the worker only touches them between
    // its doorbell read and its done kick, and we hold the slot.
    w->jobRing->reset();
    w->resultRing->reset();
    {
        std::vector<unsigned char> framed(sizeof(std::uint32_t) +
                                          jobSize);
        const std::uint32_t op = kOpJob;
        std::memcpy(framed.data(), &op, sizeof op);
        std::memcpy(framed.data() + sizeof op, job, jobSize);
        w->jobRing->commit(framed.data(), framed.size());
    }
    writeDoorbell(w->jobFd);

    // Wait for the done doorbell, the worker's death, or the deadline.
    // Completion wins a photo finish against death: a committed result
    // is a committed result even if the worker died a microsecond
    // later (the checksum protocol rejects torn ones regardless).
    bool done = false;
    bool died = false;
    bool killed = false;
    for (;;) {
        struct pollfd pfds[2];
        pfds[0] = {w->doneFd, POLLIN, 0};
        pfds[1] = {w->pidFd, POLLIN, 0};
        const nfds_t nfds = w->pidFd >= 0 ? 2 : 1;

        int timeoutMs = -1;
        if (deadlineSeconds > 0.0 && !killed) {
            const double remaining = deadlineSeconds - timer.seconds();
            if (remaining <= 0.0) {
                ::kill(w->pid, SIGKILL);
                killed = true;
                continue; // now wait for the corpse
            }
            timeoutMs = static_cast<int>(std::ceil(remaining * 1e3));
        }
        if (nfds == 1) {
            // No pidfd on this kernel: a worker death cannot wake the
            // poll, so probe for one on a bounded cadence instead.
            if (::waitpid(w->pid, nullptr, WNOHANG | WNOWAIT) > 0) {
                died = true;
                break;
            }
            if (timeoutMs < 0 || timeoutMs > 20)
                timeoutMs = 20;
        }
        const int rc = ::poll(pfds, nfds, timeoutMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            panic(strCat("poll on sandbox worker ", w->pid,
                         " failed: errno=", errno));
        }
        if (rc == 0)
            continue; // deadline check at the top of the loop
        if ((pfds[0].revents & POLLIN) != 0) {
            done = true;
            break;
        }
        if (nfds == 2 && (pfds[1].revents & (POLLIN | POLLERR)) != 0) {
            died = true;
            break;
        }
    }

    if (done && !killed) {
        // Drain the doorbell and unwrap [status | result bytes].
        readDoorbell(w->doneFd);
        const std::size_t bytes = w->resultRing->payloadSize();
        std::uint32_t status = 0;
        if (bytes >= sizeof status) {
            std::vector<unsigned char> framed(bytes);
            if (w->resultRing->read(framed.data(), bytes)) {
                std::memcpy(&status, framed.data(), sizeof status);
                if (status == 0 &&
                    bytes == sizeof status + resultSize) {
                    std::memcpy(result, framed.data() + sizeof status,
                                resultSize);
                    out.resultValid = true;
                }
            }
        }
        if (status != 0) {
            // The handler threw; the worker contained it and lives on.
            out.exit = ChildExit::NonZeroExit;
            out.detail = static_cast<int>(status);
        } else {
            out.exit = ChildExit::Clean;
        }
        out.wallSeconds = timer.seconds();
        std::lock_guard<std::mutex> lock(mutex_);
        w->busy = false;
        freeCv_.notify_one();
        return out;
    }

    // The worker died (by its own hand or our deadline SIGKILL): reap,
    // classify with the runInFork taxonomy, and re-fork the slot.
    int wstatus = 0;
    while (::waitpid(w->pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    if (killed) {
        out.exit = ChildExit::KilledOnDeadline;
        out.detail = SIGKILL;
    } else if (WIFEXITED(wstatus)) {
        out.exit = ChildExit::NonZeroExit;
        out.detail = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
        out.exit = ChildExit::Signaled;
        out.detail = WTERMSIG(wstatus);
    } else {
        panic(strCat("unexpected waitpid status ", wstatus,
                     " for sandbox worker"));
    }
    (void)died;
    out.wallSeconds = timer.seconds();

    std::lock_guard<std::mutex> lock(mutex_);
    w->alive = false;
    w->pid = -1;
    ++stats_.respawns;
    spawnLocked(*w); // failure leaves the slot for acquire-time retry
    w->busy = false;
    freeCv_.notify_one();
    return out;
}

WorkerPoolStats
WorkerPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::vector<pid_t>
WorkerPool::workerPids() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<pid_t> pids;
    pids.reserve(workers_.size());
    for (const auto& w : workers_)
        pids.push_back(w->alive ? w->pid : -1);
    return pids;
}

} // namespace hpcmixp::support
