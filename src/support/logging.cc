#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace hpcmixp::support {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const std::string& msg)
{
    if (g_level >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string& msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debug(const std::string& msg)
{
    if (g_level >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
fatal(const std::string& msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace hpcmixp::support
