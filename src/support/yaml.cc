#include "support/yaml.h"

#include <fstream>
#include <sstream>

#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::support::yaml {

const std::string&
Node::asString() const
{
    if (!isScalar())
        fatal("yaml: asString() on a non-scalar node");
    return scalar_;
}

double
Node::asDouble() const
{
    return parseDouble(asString(), "yaml scalar");
}

long
Node::asLong() const
{
    return parseLong(asString(), "yaml scalar");
}

const std::vector<Node>&
Node::items() const
{
    if (!isSequence())
        fatal("yaml: items() on a non-sequence node");
    return items_;
}

bool
Node::has(const std::string& key) const
{
    return isMapping() && map_.count(key) > 0;
}

const Node&
Node::at(const std::string& key) const
{
    const Node* n = find(key);
    if (!n)
        fatal(strCat("yaml: missing key '", key, "'"));
    return *n;
}

const Node*
Node::find(const std::string& key) const
{
    if (!isMapping())
        return nullptr;
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
}

const std::vector<std::string>&
Node::keys() const
{
    if (!isMapping())
        fatal("yaml: keys() on a non-mapping node");
    return keys_;
}

std::string
Node::getString(const std::string& key, const std::string& fallback) const
{
    const Node* n = find(key);
    return n ? n->asString() : fallback;
}

double
Node::getDouble(const std::string& key, double fallback) const
{
    const Node* n = find(key);
    return n ? n->asDouble() : fallback;
}

long
Node::getLong(const std::string& key, long fallback) const
{
    const Node* n = find(key);
    return n ? n->asLong() : fallback;
}

void
Node::setScalar(std::string value)
{
    kind_ = NodeKind::Scalar;
    scalar_ = std::move(value);
}

void
Node::pushItem(Node item)
{
    kind_ = NodeKind::Sequence;
    items_.push_back(std::move(item));
}

Node&
Node::insert(const std::string& key, Node child)
{
    kind_ = NodeKind::Mapping;
    if (!map_.count(key))
        keys_.push_back(key);
    return map_[key] = std::move(child);
}

namespace {

/** One meaningful (non-blank, non-comment) line of the document. */
struct Line {
    int indent = 0;
    std::string content;
    int number = 0;
};

/** Strip a trailing unquoted comment from @p s. */
std::string
stripComment(const std::string& s)
{
    bool inSingle = false;
    bool inDouble = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (c == '\'' && !inDouble)
            inSingle = !inSingle;
        else if (c == '"' && !inSingle)
            inDouble = !inDouble;
        else if (c == '#' && !inSingle && !inDouble)
            return s.substr(0, i);
    }
    return s;
}

/** Remove matching surrounding quotes, if any. */
std::string
unquote(const std::string& s)
{
    if (s.size() >= 2 &&
        ((s.front() == '\'' && s.back() == '\'') ||
         (s.front() == '"' && s.back() == '"')))
        return s.substr(1, s.size() - 2);
    return s;
}

/** Split a flow sequence body "a, 'b c', d" into items. */
std::vector<std::string>
splitFlowItems(const std::string& body, int lineNo)
{
    std::vector<std::string> out;
    std::string cur;
    bool inSingle = false;
    bool inDouble = false;
    for (char c : body) {
        if (c == '\'' && !inDouble) {
            inSingle = !inSingle;
            cur += c;
        } else if (c == '"' && !inSingle) {
            inDouble = !inDouble;
            cur += c;
        } else if (c == ',' && !inSingle && !inDouble) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (inSingle || inDouble)
        fatal(strCat("yaml line ", lineNo, ": unterminated quote in [...]"));
    if (!trim(cur).empty() || !out.empty())
        out.push_back(cur);
    return out;
}

/** Parse a scalar-or-flow-sequence value. */
Node
parseValue(const std::string& raw, int lineNo)
{
    std::string v = trim(raw);
    Node node;
    if (!v.empty() && v.front() == '[') {
        if (v.back() != ']')
            fatal(strCat("yaml line ", lineNo, ": unterminated '['"));
        node = Node(NodeKind::Sequence);
        for (auto& item : splitFlowItems(v.substr(1, v.size() - 2),
                                         lineNo)) {
            std::string t = trim(item);
            if (t.empty())
                fatal(strCat("yaml line ", lineNo,
                             ": empty item in flow sequence"));
            Node child;
            child.setScalar(unquote(t));
            node.pushItem(std::move(child));
        }
        return node;
    }
    node.setScalar(unquote(v));
    return node;
}

class Parser {
  public:
    explicit Parser(const std::string& text) { tokenize(text); }

    Node
    parseDocument()
    {
        if (lines_.empty())
            return Node(NodeKind::Mapping);
        std::size_t pos = 0;
        Node root = parseBlock(pos, lines_[0].indent);
        if (pos != lines_.size())
            fatal(strCat("yaml line ", lines_[pos].number,
                         ": inconsistent indentation"));
        return root;
    }

  private:
    void
    tokenize(const std::string& text)
    {
        std::istringstream in(text);
        std::string raw;
        int number = 0;
        while (std::getline(in, raw)) {
            ++number;
            std::string noComment = stripComment(raw);
            if (trim(noComment).empty())
                continue;
            int indent = 0;
            for (char c : noComment) {
                if (c == ' ')
                    ++indent;
                else if (c == '\t')
                    fatal(strCat("yaml line ", number,
                                 ": tabs are not allowed in indentation"));
                else
                    break;
            }
            lines_.push_back(
                {indent, trim(noComment), number});
        }
    }

    /** Parse a block (mapping or sequence) whose lines share @p indent. */
    Node
    parseBlock(std::size_t& pos, int indent)
    {
        if (startsWith(lines_[pos].content, "- "))
            return parseSequence(pos, indent);
        return parseMapping(pos, indent);
    }

    Node
    parseSequence(std::size_t& pos, int indent)
    {
        Node node(NodeKind::Sequence);
        while (pos < lines_.size() && lines_[pos].indent == indent &&
               startsWith(lines_[pos].content, "- ")) {
            std::string body = lines_[pos].content.substr(2);
            node.pushItem(parseValue(body, lines_[pos].number));
            ++pos;
        }
        return node;
    }

    Node
    parseMapping(std::size_t& pos, int indent)
    {
        Node node(NodeKind::Mapping);
        while (pos < lines_.size() && lines_[pos].indent == indent) {
            const Line& line = lines_[pos];
            if (startsWith(line.content, "- "))
                fatal(strCat("yaml line ", line.number,
                             ": sequence item inside a mapping"));
            auto colon = findKeyColon(line);
            std::string key = trim(line.content.substr(0, colon));
            std::string rest = trim(line.content.substr(colon + 1));
            ++pos;
            if (!rest.empty()) {
                node.insert(key, parseValue(rest, line.number));
            } else if (pos < lines_.size() &&
                       lines_[pos].indent > indent) {
                int childIndent = lines_[pos].indent;
                node.insert(key, parseBlock(pos, childIndent));
            } else {
                Node empty;
                empty.setScalar("");
                node.insert(key, std::move(empty));
            }
        }
        return node;
    }

    /** Locate the key/value colon, respecting quoted keys. */
    std::size_t
    findKeyColon(const Line& line)
    {
        bool inSingle = false;
        bool inDouble = false;
        for (std::size_t i = 0; i < line.content.size(); ++i) {
            char c = line.content[i];
            if (c == '\'' && !inDouble)
                inSingle = !inSingle;
            else if (c == '"' && !inSingle)
                inDouble = !inDouble;
            else if (c == ':' && !inSingle && !inDouble)
                return i;
        }
        fatal(strCat("yaml line ", line.number, ": expected 'key: value'"));
    }

    std::vector<Line> lines_;
};

} // namespace

Node
parse(const std::string& text)
{
    return Parser(text).parseDocument();
}

Node
parseFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strCat("yaml: cannot open '", path, "'"));
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

} // namespace hpcmixp::support::yaml
