#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::support {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    HPCMIXP_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    HPCMIXP_ASSERT(cells.size() == headers_.size(),
                   strCat("row has ", cells.size(), " cells, expected ",
                          headers_.size()));
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(double v, int precision)
{
    if (std::isnan(v))
        return "NaN";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
Table::cellSci(double v)
{
    return sciCompact(v);
}

std::string
Table::cell(long v)
{
    return std::to_string(v);
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string>& row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << ' ' << row[c];
            os << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << '\n';
    };
    auto printRule = [&] {
        os << "+";
        for (std::size_t c = 0; c < widths.size(); ++c)
            os << std::string(widths[c] + 2, '-') << "+";
        os << '\n';
    };

    printRule();
    printRow(headers_);
    printRule();
    for (const auto& row : rows_)
        printRow(row);
    printRule();
}

void
Table::printCsv(std::ostream& os) const
{
    os << join(headers_, ",") << '\n';
    for (const auto& row : rows_)
        os << join(row, ",") << '\n';
}

} // namespace hpcmixp::support
