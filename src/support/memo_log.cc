#include "support/memo_log.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "support/logging.h"

namespace hpcmixp::support {

std::uint64_t
fnv1a64(const void* data, std::size_t size)
{
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
fnv1a64(const std::string& text)
{
    return fnv1a64(text.data(), text.size());
}

namespace {

/** Checksum rendered exactly as it appears on a record line. */
std::string
checksumOf(const std::string& record)
{
    char buf[9];
    std::snprintf(buf, sizeof(buf), "%08x",
                  static_cast<unsigned>(fnv1a64(record) & 0xffffffffu));
    return buf;
}

} // namespace

AppendLog::AppendLog(std::string path, std::string header)
    : path_(std::move(path))
{
    load(header);
    // Reopen for appending only after recovery has truncated the tail;
    // opening in app mode first would write past the partial record.
    out_.open(path_, std::ios::app);
    if (!out_)
        fatal(strCat("memo log: cannot open '", path_,
                     "' for appending"));
    if (out_.tellp() == std::ofstream::pos_type(0)) {
        out_ << header << '\n';
        out_.flush();
    }
}

void
AppendLog::load(const std::string& header)
{
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return; // fresh log; the constructor writes the header
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    if (text.empty())
        return; // fresh log; the constructor writes the header

    // Header line: present, terminated and matching, or the whole file
    // is stale (the fingerprint behind this log changed).
    std::size_t eol = text.find('\n');
    if (eol == std::string::npos ||
        text.compare(0, eol, header) != 0) {
        reset_ = true;
        std::ofstream wipe(path_, std::ios::trunc);
        return;
    }

    // Records: keep the longest prefix of durable lines. The first
    // malformed or unterminated line and everything after it is the
    // partial tail a crash mid-append leaves behind.
    std::size_t durable = eol + 1;
    std::size_t pos = durable;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            break; // unterminated tail
        // "<8 hex> <record>"
        if (end - pos < 10 || text[pos + 8] != ' ')
            break;
        std::string record = text.substr(pos + 9, end - pos - 9);
        if (text.compare(pos, 8, checksumOf(record)) != 0)
            break;
        records_.push_back(std::move(record));
        pos = end + 1;
        durable = pos;
    }
    if (durable < text.size()) {
        truncatedBytes_ = text.size() - durable;
        std::filesystem::resize_file(path_, durable);
    }
}

void
AppendLog::append(const std::string& record)
{
    HPCMIXP_ASSERT(record.find('\n') == std::string::npos,
                   "memo log records must be newline-free");
    out_ << checksumOf(record) << ' ' << record << '\n';
    out_.flush();
}

} // namespace hpcmixp::support
