#ifndef HPCMIXP_SUPPORT_YAML_H_
#define HPCMIXP_SUPPORT_YAML_H_

/**
 * @file
 * Minimal YAML-subset parser.
 *
 * The paper's harness is driven by YAML configuration files (Listing 4).
 * This parser supports exactly the subset that schema needs and nothing
 * more: indentation-nested mappings, scalar values (bare, single- or
 * double-quoted), inline flow sequences [a, b, c], block sequences
 * ("- item" lines), and '#' comments. Anchors, multi-line scalars and
 * other full-YAML features are intentionally out of scope.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hpcmixp::support::yaml {

/** Kind of a parsed node. */
enum class NodeKind { Scalar, Sequence, Mapping };

/** A parsed YAML node (scalar, sequence, or ordered mapping). */
class Node {
  public:
    /** Construct an empty node of the given kind. */
    explicit Node(NodeKind kind = NodeKind::Scalar) : kind_(kind) {}

    NodeKind kind() const { return kind_; }
    bool isScalar() const { return kind_ == NodeKind::Scalar; }
    bool isSequence() const { return kind_ == NodeKind::Sequence; }
    bool isMapping() const { return kind_ == NodeKind::Mapping; }

    /** Scalar value; fatal()s when not a scalar. */
    const std::string& asString() const;

    /** Scalar parsed as double; fatal()s on malformed. */
    double asDouble() const;

    /** Scalar parsed as long; fatal()s on malformed. */
    long asLong() const;

    /** Sequence items; fatal()s when not a sequence. */
    const std::vector<Node>& items() const;

    /** True if the mapping contains @p key. */
    bool has(const std::string& key) const;

    /** Mapping lookup; fatal()s when not a mapping or key missing. */
    const Node& at(const std::string& key) const;

    /** Mapping lookup returning nullptr when absent. */
    const Node* find(const std::string& key) const;

    /** Keys of a mapping in file order. */
    const std::vector<std::string>& keys() const;

    /** Scalar convenience with default. */
    std::string getString(const std::string& key,
                          const std::string& fallback) const;
    double getDouble(const std::string& key, double fallback) const;
    long getLong(const std::string& key, long fallback) const;

    // Construction API (used by the parser and by tests).
    void setScalar(std::string value);
    void pushItem(Node item);
    Node& insert(const std::string& key, Node child);

  private:
    NodeKind kind_;
    std::string scalar_;
    std::vector<Node> items_;
    std::vector<std::string> keys_;
    std::map<std::string, Node> map_;
};

/** Parse a YAML document from text; fatal()s with line info on errors. */
Node parse(const std::string& text);

/** Parse a YAML document from a file; fatal()s if unreadable. */
Node parseFile(const std::string& path);

} // namespace hpcmixp::support::yaml

#endif // HPCMIXP_SUPPORT_YAML_H_
