#ifndef HPCMIXP_SUPPORT_WORKER_POOL_H_
#define HPCMIXP_SUPPORT_WORKER_POOL_H_

/**
 * @file
 * Persistent pre-forked sandbox worker pool (DESIGN.md, Section 15).
 *
 * Where runInFork() pays a fresh fork()+copy-on-write fault storm per
 * evaluation, a WorkerPool forks N long-lived children once, at
 * campaign start, and feeds them over per-worker shared-memory job
 * rings. One evaluation then costs a ring write plus an eventfd
 * doorbell kick instead of a process spawn, and each worker keeps its
 * process-local caches (prepared inputs, thread-local workspaces) warm
 * across the evaluations it serves.
 *
 * Per worker the parent owns:
 *
 *     job ring     (ShmArena)  parent commits [op | job bytes]
 *     result ring  (ShmArena)  child commits  [status | result bytes]
 *     job doorbell (eventfd)   parent kicks, child blocks on read()
 *     done doorbell (eventfd)  child kicks after committing a result
 *     pidfd                    polled for child death and deadlines
 *
 * Both rings use the ShmArena commit protocol — magic, capacity,
 * payload size, FNV-1a checksum, then an atomic state flip as the last
 * store — so a reader on either side of the process boundary sees a
 * complete checksummed message or nothing, never a torn one.
 *
 * A handler that crashes, spins past the deadline or _exit()s takes
 * only its worker with it: the parent classifies the death with the
 * runInFork ChildExit taxonomy, reaps the corpse, and re-forks a fresh
 * worker on the same rings and doorbells (the shared mappings and
 * parent-side eventfds survive the child), so the pool's file
 * descriptor count is constant for the life of the pool. A handler
 * that merely throws is contained in-worker (status kChildBodyThrew)
 * and the worker keeps serving.
 *
 * run() hands each job to the lowest-indexed free worker, which keeps
 * dispatch order deterministic for single-threaded submitters; callers
 * that dispatch from several threads block on a condition variable
 * until a worker frees up.
 */

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include <sys/types.h>

#include "support/subprocess.h"

namespace hpcmixp::support {

/** Classified outcome of one WorkerPool::run() dispatch. */
struct PoolOutcome {
    /** Reuses the runInFork taxonomy: Clean means the worker committed
     *  a result envelope and kept running; NonZeroExit with detail
     *  kChildBodyThrew means the handler threw (contained in-worker);
     *  other NonZeroExit / Signaled / KilledOnDeadline / SpawnFailed
     *  mean the worker died serving this job and was re-forked. */
    ChildExit exit = ChildExit::Clean;

    /** Exit code, terminating signal, or errno — as in ChildOutcome. */
    int detail = 0;

    /** Parent wall clock from dispatch to classified completion. */
    double wallSeconds = 0.0;

    /** True when the caller's result buffer holds a checksum-valid
     *  handler result of exactly the requested size. */
    bool resultValid = false;
};

/** Pool-lifetime accounting. */
struct WorkerPoolStats {
    std::size_t forks = 0;      ///< fork() calls: initial spawn + respawns
    std::size_t dispatched = 0; ///< jobs handed to a worker
    std::size_t respawns = 0;   ///< workers re-forked after a death
    std::size_t spawnFailures = 0; ///< fork() failures (spawn or respawn)
};

/** N pre-forked sandbox workers fed over shared-memory job rings. */
class WorkerPool {
  public:
    /**
     * Job handler, executed inside a worker child. Receives the job
     * bytes, writes up to @p resultCapacity result bytes into
     * @p result and returns how many it wrote. A thrown exception is
     * contained in-worker and surfaces to run() as NonZeroExit with
     * detail kChildBodyThrew. Anything the handler touches must have
     * existed before the pool was constructed: workers are forked in
     * the constructor and never see parent memory created afterwards.
     */
    using Handler = std::function<std::size_t(
        const void* job, std::size_t jobSize, void* result,
        std::size_t resultCapacity)>;

    /**
     * Fork @p workers children ready to run @p handler on jobs of up
     * to @p jobCapacity bytes producing up to @p resultCapacity result
     * bytes. @p workers must be >= 1.
     */
    WorkerPool(std::size_t workers, std::size_t jobCapacity,
               std::size_t resultCapacity, Handler handler);

    /** Stops every worker (stop op + doorbell, SIGKILL stragglers),
     *  reaps them all and closes every descriptor. */
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /**
     * Dispatch one job and block until it completes, the worker dies,
     * or @p deadlineSeconds expires (<= 0 waits forever; on expiry the
     * worker is SIGKILLed and reported KilledOnDeadline, like
     * runInFork). On Clean completion the handler's result is copied
     * into @p result when its size is exactly @p resultSize —
     * resultValid says whether it was. A dead worker is reaped,
     * classified and re-forked before run() returns; if the re-fork
     * fails the next dispatch retries it, and only when no worker can
     * be (re)spawned at all does run() report SpawnFailed.
     */
    PoolOutcome run(const void* job, std::size_t jobSize, void* result,
                    std::size_t resultSize, double deadlineSeconds);

    /** Number of worker slots (fixed at construction). */
    std::size_t workerCount() const { return workers_.size(); }

    /** Snapshot of the pool-lifetime accounting. */
    WorkerPoolStats stats() const;

    /** Current worker pids, by slot; -1 for a slot whose respawn
     *  failed. For tests that kill a worker mid-campaign. */
    std::vector<pid_t> workerPids() const;

  private:
    struct Worker;

    bool spawnLocked(Worker& w);
    void stopWorker(Worker& w);

    std::vector<std::unique_ptr<Worker>> workers_;
    Handler handler_;
    std::size_t jobCapacity_ = 0;
    std::size_t resultCapacity_ = 0;

    mutable std::mutex mutex_; ///< guards worker busy/alive + stats
    std::condition_variable freeCv_;
    WorkerPoolStats stats_;
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_WORKER_POOL_H_
