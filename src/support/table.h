#ifndef HPCMIXP_SUPPORT_TABLE_H_
#define HPCMIXP_SUPPORT_TABLE_H_

/**
 * @file
 * ASCII table rendering for bench output.
 *
 * Every bench binary regenerating a paper table prints its rows through
 * this class so the output is uniform and diffable, and can also be
 * emitted as CSV for plotting (the figure benches).
 */

#include <ostream>
#include <string>
#include <vector>

namespace hpcmixp::support {

/** Column-aligned ASCII table with optional CSV emission. */
class Table {
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format cell values of mixed types. */
    static std::string cell(const std::string& s) { return s; }
    static std::string cell(double v, int precision = 2);
    static std::string cellSci(double v);
    static std::string cell(long v);

    /** Render as an aligned ASCII table. */
    void print(std::ostream& os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream& os) const;

    /** Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_TABLE_H_
