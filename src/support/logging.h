#ifndef HPCMIXP_SUPPORT_LOGGING_H_
#define HPCMIXP_SUPPORT_LOGGING_H_

/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - fatal():  the *user* did something wrong (bad configuration, invalid
 *              arguments); throws FatalError so callers/tests can observe it.
 *  - panic():  an internal invariant was violated (a bug in this library);
 *              aborts after printing.
 *  - warn()/inform(): non-fatal status messages.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace hpcmixp::support {

/** Error thrown by fatal(): a user-correctable condition. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/** Verbosity levels for the global logger. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Print an informational message (shown at Inform verbosity and above). */
void inform(const std::string& msg);

/** Print a warning (shown at Warn verbosity and above). */
void warn(const std::string& msg);

/** Print a debug message (shown only at Debug verbosity). */
void debug(const std::string& msg);

/** Report a user error: print and throw FatalError. */
[[noreturn]] void fatal(const std::string& msg);

/** Report an internal library bug: print and abort. */
[[noreturn]] void panic(const std::string& msg);

/** Build a message from streamable parts: strCat("x=", 3, "!"). */
template <class... Args>
std::string
strCat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Assert an internal invariant; panics with location info on failure. */
#define HPCMIXP_ASSERT(cond, msg)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::hpcmixp::support::panic(::hpcmixp::support::strCat(            \
                __FILE__, ":", __LINE__, ": assertion `", #cond,             \
                "' failed: ", msg));                                         \
        }                                                                    \
    } while (0)

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_LOGGING_H_
