#ifndef HPCMIXP_SUPPORT_JSON_H_
#define HPCMIXP_SUPPORT_JSON_H_

/**
 * @file
 * Minimal JSON value, parser and writer.
 *
 * FloatSmith integrates its constituent tools through a JSON-based
 * interchange format (paper Section I); the suite's `core/interchange`
 * uses this module to export tuning reports and import externally
 * produced configurations. Supports the full JSON grammar except
 * surrogate-pair escapes.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hpcmixp::support::json {

/** Kind of a JSON value. */
enum class ValueKind { Null, Boolean, Number, String, Array, Object };

/** A JSON document node. */
class Value {
  public:
    Value() : kind_(ValueKind::Null) {}

    static Value null();
    static Value boolean(bool b);
    static Value number(double v);
    static Value string(std::string s);
    static Value array();
    static Value object();

    ValueKind kind() const { return kind_; }
    bool isNull() const { return kind_ == ValueKind::Null; }
    bool isObject() const { return kind_ == ValueKind::Object; }
    bool isArray() const { return kind_ == ValueKind::Array; }

    /** Typed accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    long asLong() const;
    const std::string& asString() const;

    /** Array access. */
    const std::vector<Value>& items() const;
    void push(Value v);

    /** Object access (insertion-ordered keys). */
    const std::vector<std::string>& keys() const;
    bool has(const std::string& key) const;
    const Value& at(const std::string& key) const;
    Value& set(const std::string& key, Value v);

    /** Serialize; @p indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string& out, int indent, int depth) const;

    ValueKind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::string> keys_;
    std::map<std::string, Value> members_;
};

/** Parse a JSON document; fatal()s with offset info on errors. */
Value parse(const std::string& text);

} // namespace hpcmixp::support::json

#endif // HPCMIXP_SUPPORT_JSON_H_
