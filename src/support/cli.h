#ifndef HPCMIXP_SUPPORT_CLI_H_
#define HPCMIXP_SUPPORT_CLI_H_

/**
 * @file
 * Minimal command-line flag parser used by the harness, benches and
 * examples. Supports `--flag value`, `--flag=value` and boolean
 * `--flag` forms plus positional arguments.
 */

#include <map>
#include <string>
#include <vector>

namespace hpcmixp::support {

/** Parsed command line: named flags plus positional arguments. */
class CommandLine {
  public:
    /** Parse argv; fatal()s on `--unknown=` syntax errors only. */
    CommandLine(int argc, const char* const* argv);

    /** True if `--name` appeared (with or without a value). */
    bool has(const std::string& name) const;

    /** Value of `--name`, or @p fallback when absent. */
    std::string getString(const std::string& name,
                          const std::string& fallback) const;

    /** Integer value of `--name`, or @p fallback when absent. */
    long getLong(const std::string& name, long fallback) const;

    /** Double value of `--name`, or @p fallback when absent. */
    double getDouble(const std::string& name, double fallback) const;

    /** Boolean flag: present without value, or value in {1,true,yes}. */
    bool getBool(const std::string& name, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string& program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_CLI_H_
