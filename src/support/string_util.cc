#include "support/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.h"

namespace hpcmixp::support {

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto& c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
join(const std::vector<std::string>& items, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

double
parseDouble(std::string_view s, std::string_view what)
{
    std::string str(trim(s));
    char* end = nullptr;
    double v = std::strtod(str.c_str(), &end);
    if (str.empty() || end != str.c_str() + str.size())
        fatal(strCat("malformed number for ", what, ": '", str, "'"));
    return v;
}

long
parseLong(std::string_view s, std::string_view what)
{
    std::string str(trim(s));
    char* end = nullptr;
    long v = std::strtol(str.c_str(), &end, 10);
    if (str.empty() || end != str.c_str() + str.size())
        fatal(strCat("malformed integer for ", what, ": '", str, "'"));
    return v;
}

std::string
sciCompact(double v)
{
    if (v == 0.0)
        return "0";
    if (std::isnan(v))
        return "NaN";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2e", v);
    return buf;
}

} // namespace hpcmixp::support
