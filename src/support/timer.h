#ifndef HPCMIXP_SUPPORT_TIMER_H_
#define HPCMIXP_SUPPORT_TIMER_H_

/**
 * @file
 * Wall-clock timing and the paper's measurement protocol.
 *
 * HPC-MixPBench reports the speedup of a tuned configuration as the ratio
 * of averaged execution times, where each version is run ten times and the
 * best and worst samples are discarded (IISWC'20, Section IV). The
 * repeatTimed() helper implements exactly that protocol.
 */

#include <chrono>
#include <cstddef>
#include <functional>
#include <vector>

namespace hpcmixp::support {

/** Simple monotonic wall-clock stopwatch. */
class WallTimer {
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Result of a repeated timing measurement. */
struct TimingResult {
    double meanSeconds = 0.0;   ///< trimmed mean over kept samples
    double minSeconds = 0.0;    ///< fastest sample
    double maxSeconds = 0.0;    ///< slowest sample
    std::vector<double> samples; ///< all raw samples, in run order
};

/**
 * Run @p fn @p reps times and return the trimmed mean.
 *
 * With reps >= 3 the best and worst samples are discarded before
 * averaging (the paper's protocol with reps = 10); with fewer reps the
 * plain mean is used.
 *
 * @param fn    the workload; its side effects must be idempotent.
 * @param reps  number of repetitions (>= 1).
 */
TimingResult repeatTimed(const std::function<void()>& fn, std::size_t reps);

/** Trimmed mean of @p samples, dropping min and max when size >= 3. */
double trimmedMean(std::vector<double> samples);

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_TIMER_H_
