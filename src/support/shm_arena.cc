#include "support/shm_arena.h"

#include <atomic>
#include <cstring>

#include <sys/mman.h>

#include "support/logging.h"
#include "support/memo_log.h"

namespace hpcmixp::support {

namespace {

constexpr std::uint64_t kArenaMagic = 0x484d5850'41524e41ULL; // "HMXPARNA"
constexpr std::uint32_t kStateEmpty = 0;
constexpr std::uint32_t kStateCommitted = 0xc0117ed1;

} // namespace

struct ShmArena::Header {
    std::uint64_t magic;
    std::uint64_t capacity;
    std::uint64_t payloadSize;
    std::uint64_t checksum;
    std::atomic<std::uint32_t> state;
};

ShmArena::ShmArena(std::size_t capacity)
{
    mapBytes_ = sizeof(Header) + capacity;
    void* map = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (map == MAP_FAILED)
        fatal(strCat("mmap of ", mapBytes_,
                     "-byte shared result arena failed"));
    map_ = map;
    Header* h = header();
    h->magic = kArenaMagic;
    h->capacity = capacity;
    h->payloadSize = 0;
    h->checksum = 0;
    h->state.store(kStateEmpty, std::memory_order_relaxed);
}

ShmArena::~ShmArena()
{
    if (map_ != nullptr) ::munmap(map_, mapBytes_);
}

ShmArena::Header*
ShmArena::header() const
{
    return static_cast<Header*>(map_);
}

unsigned char*
ShmArena::payloadBase() const
{
    return static_cast<unsigned char*>(map_) + sizeof(Header);
}

std::size_t
ShmArena::capacity() const
{
    return static_cast<std::size_t>(header()->capacity);
}

void
ShmArena::reset()
{
    Header* h = header();
    h->payloadSize = 0;
    h->checksum = 0;
    h->state.store(kStateEmpty, std::memory_order_release);
}

void
ShmArena::commit(const void* data, std::size_t size)
{
    Header* h = header();
    HPCMIXP_ASSERT(size <= capacity(),
                   strCat("arena payload ", size, " exceeds capacity ",
                          capacity()));
    std::memcpy(payloadBase(), data, size);
    h->payloadSize = size;
    h->checksum = fnv1a64(payloadBase(), size);
    // Last store; release-orders the payload and checksum before the
    // flag a post-reap parent will acquire.
    h->state.store(kStateCommitted, std::memory_order_release);
}

bool
ShmArena::committed() const
{
    const Header* h = header();
    if (h->magic != kArenaMagic) return false;
    if (h->state.load(std::memory_order_acquire) != kStateCommitted)
        return false;
    const std::uint64_t size = h->payloadSize;
    if (size > h->capacity) return false;
    return h->checksum == fnv1a64(payloadBase(), size);
}

std::size_t
ShmArena::payloadSize() const
{
    return committed() ? static_cast<std::size_t>(header()->payloadSize)
                       : 0;
}

bool
ShmArena::read(void* out, std::size_t size) const
{
    if (!committed()) return false;
    if (static_cast<std::size_t>(header()->payloadSize) != size)
        return false;
    std::memcpy(out, payloadBase(), size);
    return true;
}

void*
ShmArena::payload()
{
    return payloadBase();
}

} // namespace hpcmixp::support
