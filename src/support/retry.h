#ifndef HPCMIXP_SUPPORT_RETRY_H_
#define HPCMIXP_SUPPORT_RETRY_H_

/**
 * @file
 * Retry/backoff scheduling for the resilient evaluation layer.
 *
 * Transient evaluation failures (the crashed nodes and flaky runs of
 * the paper's SLURM campaigns) are retried with exponential backoff:
 * the delay grows multiplicatively per attempt, is capped, and carries
 * a small uniform jitter so that concurrent retries de-synchronize.
 * The jitter stream is a seeded Pcg32, keeping every retry schedule
 * reproducible run-to-run.
 */

#include <cstddef>

#include "support/rng.h"

namespace hpcmixp::support {

/** Exponential-backoff parameters. */
struct BackoffPolicy {
    double initialSeconds = 0.001; ///< delay before the first retry
    double multiplier = 2.0;       ///< growth factor per further retry
    double maxSeconds = 0.250;     ///< cap on any single delay
    double jitterFraction = 0.1;   ///< +/- uniform jitter around the delay
};

/**
 * Delay before retry @p attempt (0-based), jittered via @p rng.
 * Deterministic given the policy and the generator state; never
 * negative.
 */
double backoffDelaySeconds(const BackoffPolicy& policy,
                           std::size_t attempt, Pcg32& rng);

/** Sleep the calling thread for @p seconds (no-op when <= 0). */
void sleepForSeconds(double seconds);

} // namespace hpcmixp::support

#endif // HPCMIXP_SUPPORT_RETRY_H_
