#include "support/rng.h"

#include <cmath>

namespace hpcmixp::support {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
{
    SplitMix64 sm(seed + 0x1234567890abcdefULL * (stream + 1));
    inc_ = (sm.next() << 1u) | 1u;
    state_ = sm.next();
    nextU32();
}

std::uint32_t
Pcg32::nextU32()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double
Pcg32::nextDouble()
{
    // 53 random bits -> [0,1).
    std::uint64_t hi = nextU32();
    std::uint64_t lo = nextU32();
    std::uint64_t bits = ((hi << 32) | lo) >> 11;
    return static_cast<double>(bits) * 0x1.0p-53;
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = nextU32();
        if (r >= threshold)
            return r % bound;
    }
}

double
Pcg32::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Pcg32::normal()
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

bool
Pcg32::chance(double p)
{
    return nextDouble() < p;
}

void
fillUniform(Pcg32& rng, std::vector<double>& out, double lo, double hi)
{
    for (auto& v : out)
        v = rng.uniform(lo, hi);
}

} // namespace hpcmixp::support
