/**
 * @file
 * mixp-lint — standalone static precision-sensitivity linter.
 *
 *   mixp-lint [--json] [--benchmark <name>] [--all] [file.c ...]
 *
 * Runs the lint rule catalog (typeforge/lint.h) over the program
 * models of the built-in benchmarks and/or source files written in
 * the mirror language, and prints the sensitivity report. Source
 * files are parsed tolerantly: syntax errors become diagnostics, the
 * recovered part of the model is still linted, and the exit status is
 * non-zero so CI catches them.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "support/cli.h"
#include "support/logging.h"
#include "typeforge/frontend/parser.h"
#include "typeforge/lint.h"

namespace {

using namespace hpcmixp;

void
emit(const typeforge::SensitivityReport& report, bool json, bool& first)
{
    if (json) {
        // Reports stream as a JSON array so multiple targets stay one
        // parseable document.
        std::cout << (first ? "[\n" : ",\n")
                  << typeforge::lintReportToJson(report).dump(2);
    } else {
        if (!first)
            std::cout << '\n';
        typeforge::printLintReport(std::cout, report);
    }
    first = false;
}

int
lintFile(const std::string& path, bool json, bool& first)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "mixp-lint: cannot open " << path << '\n';
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    typeforge::frontend::ParseResult parsed =
        typeforge::frontend::parseProgram(text.str(), path);
    for (const auto& d : parsed.diagnostics)
        std::cerr << path << ':' << d.line << ':' << d.column << ": "
                  << d.message << '\n';
    emit(typeforge::lint(parsed.model), json, first);
    return parsed.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    support::CommandLine cl(argc, argv);

    if (cl.has("help")) {
        std::cout
            << "usage: mixp-lint [options] [file ...]\n"
               "  --benchmark <name>  lint one built-in benchmark\n"
               "  --all               lint every built-in benchmark\n"
               "  --json              emit JSON instead of text\n"
               "  file ...            lint mirror-language source files\n"
               "Exit status is 1 when any file has syntax errors.\n";
        return 0;
    }

    bool json = cl.getBool("json", false);
    int status = 0;
    bool first = true;

    try {
        auto& registry = benchmarks::BenchmarkRegistry::instance();
        std::vector<std::string> names;
        if (cl.getBool("all", false))
            names = registry.names();
        else if (cl.has("benchmark"))
            names.push_back(cl.getString("benchmark", ""));
        if (names.empty() && cl.positional().empty()) {
            std::cerr << "mixp-lint: nothing to lint (try --all, "
                         "--benchmark <name>, or a source file)\n";
            return 2;
        }

        for (const std::string& name : names) {
            auto benchmark = registry.create(name);
            emit(typeforge::lint(benchmark->programModel()), json,
                 first);
        }
        for (const std::string& path : cl.positional())
            status |= lintFile(path, json, first);

        if (json)
            std::cout << "\n]\n";
    } catch (const support::FatalError& e) {
        std::cerr << "mixp-lint: " << e.what() << '\n';
        return 1;
    }
    return status;
}
