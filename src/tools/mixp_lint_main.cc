/**
 * @file
 * mixp-lint — standalone static precision-sensitivity linter.
 *
 *   mixp-lint [--json] [--ranges] [--certify] [--benchmark <name>]
 *             [--all] [--ladder SPEC] [--threshold T]
 *             [--werror] [--no-gate] [file.c ...]
 *
 * Runs the lint rule catalog (typeforge/lint.h) over the program
 * models of the built-in benchmarks and/or source files written in
 * the mirror language, and prints the sensitivity report. Source
 * files are parsed tolerantly: syntax errors become diagnostics, the
 * recovered part of the model is still linted, and the exit status is
 * non-zero so CI catches them.
 *
 * The linter doubles as a CI gate: when any Critical finding
 * (MP001 accumulator, MP007 certified range overflow) is present the
 * exit status is 3, and --werror extends the gate to Warnings.
 * --no-gate restores the report-only behavior — the suite's own
 * benchmark models legitimately contain Critical accumulators, so
 * the `lint_models` smoke test runs ungated.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "support/cli.h"
#include "support/logging.h"
#include "typeforge/clustering.h"
#include "typeforge/frontend/parser.h"
#include "typeforge/lint.h"

namespace {

using namespace hpcmixp;

/** Options shared by every linted target. */
struct LintRun {
    typeforge::AbsintOptions absint;
    bool json = false;
    bool ranges = false;
    bool certify = false;
    bool first = true;
    std::size_t criticals = 0;
    std::size_t warnings = 0;
};

void
emit(const typeforge::SensitivityReport& report, LintRun& run)
{
    run.criticals +=
        report.countSeverity(typeforge::LintSeverity::Critical);
    run.warnings +=
        report.countSeverity(typeforge::LintSeverity::Warning);
    if (run.json) {
        // Reports stream as a JSON array so multiple targets stay one
        // parseable document.
        std::cout << (run.first ? "[\n" : ",\n")
                  << typeforge::lintReportToJson(report).dump(2);
    } else {
        if (!run.first)
            std::cout << '\n';
        typeforge::printLintReport(std::cout, report, run.ranges,
                                   run.certify);
    }
    run.first = false;
}

void
lintModel(const model::ProgramModel& model, LintRun& run)
{
    emit(typeforge::lint(model, typeforge::analyze(model), run.absint),
         run);
}

int
lintFile(const std::string& path, LintRun& run)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "mixp-lint: cannot open " << path << '\n';
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    typeforge::frontend::ParseResult parsed =
        typeforge::frontend::parseProgram(text.str(), path);
    for (const auto& d : parsed.diagnostics)
        std::cerr << path << ':' << d.line << ':' << d.column << ": "
                  << d.message << '\n';
    lintModel(parsed.model, run);
    return parsed.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    support::CommandLine cl(argc, argv);

    if (cl.has("help")) {
        std::cout
            << "usage: mixp-lint [options] [file ...]\n"
               "  --benchmark <name>  lint one built-in benchmark\n"
               "  --all               lint every built-in benchmark\n"
               "  --json              emit JSON instead of text\n"
               "  --ranges            include derived value ranges\n"
               "  --certify           include per-rung certificates\n"
               "  --ladder SPEC       precision ladder, deepest last"
               " (default double,float,half,bfloat16)\n"
               "  --threshold T       error budget for MP008"
               " (default 1e-6)\n"
               "  --werror            gate on Warnings too\n"
               "  --no-gate           report only, never exit 3\n"
               "  file ...            lint mirror-language source"
               " files\n"
               "Exit status: 1 on syntax errors, 2 on usage errors,\n"
               "3 when gated findings are present (Critical, or any\n"
               "Warning under --werror).\n";
        return 0;
    }

    LintRun run;
    run.json = cl.getBool("json", false);
    run.ranges = cl.getBool("ranges", false);
    run.certify = cl.getBool("certify", false);
    bool werror = cl.getBool("werror", false);
    bool gate = !cl.getBool("no-gate", false);
    int status = 0;

    try {
        if (cl.has("ladder"))
            run.absint.ladder = runtime::PrecisionLadder::parse(
                cl.getString("ladder", ""));
        run.absint.threshold = cl.getDouble("threshold", 1e-6);

        auto& registry = benchmarks::BenchmarkRegistry::instance();
        std::vector<std::string> names;
        if (cl.getBool("all", false))
            names = registry.names();
        else if (cl.has("benchmark"))
            names.push_back(cl.getString("benchmark", ""));
        if (names.empty() && cl.positional().empty()) {
            std::cerr << "mixp-lint: nothing to lint (try --all, "
                         "--benchmark <name>, or a source file)\n";
            return 2;
        }

        for (const std::string& name : names) {
            auto benchmark = registry.create(name);
            lintModel(benchmark->programModel(), run);
        }
        for (const std::string& path : cl.positional())
            status |= lintFile(path, run);

        if (run.json)
            std::cout << "\n]\n";
    } catch (const support::FatalError& e) {
        std::cerr << "mixp-lint: " << e.what() << '\n';
        return 1;
    }

    if (gate && (run.criticals > 0 || (werror && run.warnings > 0))) {
        std::cerr << "mixp-lint: gate failed (" << run.criticals
                  << " critical, " << run.warnings
                  << " warning finding"
                  << (run.warnings == 1 ? "" : "s") << ")\n";
        return 3;
    }
    return status;
}
