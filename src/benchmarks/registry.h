#ifndef HPCMIXP_BENCHMARKS_REGISTRY_H_
#define HPCMIXP_BENCHMARKS_REGISTRY_H_

/**
 * @file
 * Registry of the suite's benchmarks.
 *
 * The ten kernels and seven applications are pre-registered; users can
 * add their own programs (the suite's extensibility goal, Section III).
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "benchmarks/benchmark.h"

namespace hpcmixp::benchmarks {

/** Kind of a registered benchmark (avoids instantiating to ask). */
enum class BenchmarkKind { Kernel, Application };

/** Factory registry keyed by benchmark name. */
class BenchmarkRegistry {
  public:
    using Factory = std::function<std::unique_ptr<Benchmark>()>;

    /** Process-wide instance with all built-ins registered. */
    static BenchmarkRegistry& instance();

    /** Register a factory; fatal()s on duplicate names. */
    void add(const std::string& name, BenchmarkKind kind,
             Factory factory);

    /** Instantiate by name; fatal()s when unknown. */
    std::unique_ptr<Benchmark> create(const std::string& name) const;

    /** True when @p name is registered. */
    bool has(const std::string& name) const;

    /** All registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Names of the kernel benchmarks, in registration order. */
    std::vector<std::string> kernelNames() const;

    /** Names of the application benchmarks, in registration order. */
    std::vector<std::string> applicationNames() const;

  private:
    struct Entry {
        std::string name;
        BenchmarkKind kind;
        Factory factory;
    };

    BenchmarkRegistry();
    std::vector<Entry> entries_;
};

} // namespace hpcmixp::benchmarks

#endif // HPCMIXP_BENCHMARKS_REGISTRY_H_
