#ifndef HPCMIXP_BENCHMARKS_DATA_H_
#define HPCMIXP_BENCHMARKS_DATA_H_

/**
 * @file
 * Seeded synthetic input generation shared by the benchmarks.
 *
 * Kernels are randomly initialized (paper Section III-B); applications
 * use deterministic synthetic generators substituting for the Rodinia /
 * PARSEC input files (DESIGN.md Section 2). Everything is derived from
 * a per-benchmark seed so runs are reproducible.
 */

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace hpcmixp::benchmarks {

/** Vector of @p n uniform values in [lo, hi), from @p seed. */
std::vector<double> uniformVector(std::uint64_t seed, std::size_t n,
                                  double lo, double hi);

/**
 * Problem-size scale factor: 1.0 normally, reduced under
 * HPCMIXP_QUICK so smoke runs finish fast.
 */
double sizeScale();

/** max(minimum, round(n * sizeScale())). */
std::size_t scaled(std::size_t n, std::size_t minimum = 8);

} // namespace hpcmixp::benchmarks

#endif // HPCMIXP_BENCHMARKS_DATA_H_
