/**
 * @file
 * eos — equation-of-state fragment (Livermore kernel 7):
 *
 *   x[k] = u[k] + r*(z[k] + r*y[k])
 *        + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
 *        + t*(u[k+6] + q*(u[k+5] + q*u[k+4])))
 *
 * High flop density per element — the kernel rewards wider single-
 * precision SIMD the most among the streaming fragments. The y and z
 * arrays are carved from one allocation pool in the driver, so the
 * type-dependence analysis places them in a single cluster.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TX, class TU, class TYZ, class TC>
void
eosCore(std::span<TX> x, std::span<const TU> u,
        std::span<const TYZ> y, std::span<const TYZ> z,
        std::span<const TC> coef, std::size_t repeats)
{
    const TC q = coef[0];
    const TC r = coef[1];
    const TC t = coef[2];
    std::size_t n = x.size();
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        for (std::size_t k = 0; k < n; ++k) {
            x[k] = static_cast<TX>(
                u[k] + r * (z[k] + r * y[k]) +
                t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1]) +
                     t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4]))));
        }
    }
}

class Eos final : public KernelBase {
  public:
    Eos() : KernelBase("eos")
    {
        n_ = scaled(80000);
        repeats_ = 12;
        uData_ = uniformVector(0xB7001, n_ + 6, 0.0, 0.05);
        yData_ = uniformVector(0xB7002, n_, 0.0, 0.05);
        zData_ = uniformVector(0xB7003, n_, 0.0, 0.05);
        coefData_ = uniformVector(0xB7004, 3, 0.01, 0.05);
        buildModel();
    }

    std::string name() const override { return "eos"; }

    std::string
    description() const override
    {
        return "Equation of state fragment";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        plan.setKnob(kX, pm.get(keyX_));
        runtime::Precision pyz = pm.get(keyYz_);
        bindInput(plan, kU, uData_, pm.get(keyU_), options, keyU_);
        bindInput(plan, kY, yData_, pyz, options, keyYz_);
        bindInput(plan, kZ, zData_, pyz, options, keyYz_);
        bindInput(plan, kCoef, coefData_, pm.get(keyCoef_), options, keyCoef_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        Buffer& x = ws.zeroed(kX, n_, plan.knob(kX));
        const Buffer& u = plan.input(kU);
        const Buffer& y = plan.input(kY);
        const Buffer& z = plan.input(kZ);
        const Buffer& coef = plan.input(kCoef);

        runtime::dispatch4(
            x.precision(), u.precision(), y.precision(),
            coef.precision(), [&](auto tx, auto tu, auto tyz, auto tc) {
                using TX = typename decltype(tx)::type;
                using TU = typename decltype(tu)::type;
                using TYZ = typename decltype(tyz)::type;
                using TC = typename decltype(tc)::type;
                eosCore<TX, TU, TYZ, TC>(
                    x.as<TX>(), u.as<TU>(),
                    std::span<const TYZ>(y.as<TYZ>()),
                    std::span<const TYZ>(z.as<TYZ>()), coef.as<TC>(),
                    repeats_);
            });
        return {x.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kX, kU, kY, kZ, kCoef };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("eos.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gu = model_.addGlobal(m, "u", realPointer(), "u");
        // y and z are carved out of one pool allocation, so the three
        // pointers form one cluster (pointer assignments unify).
        VarId pool = model_.addGlobal(m, "pool", realPointer(), "yz");
        VarId gy = model_.addGlobal(m, "y", realPointer(), "yz");
        VarId gz = model_.addGlobal(m, "z", realPointer(), "yz");
        model_.addAssign(gy, pool);
        model_.addAssign(gz, pool);
        VarId gc = model_.addGlobal(m, "coef", realPointer(), "coef");

        FunctionId k = model_.addFunction(m, "kernel7");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId pu = model_.addParameter(k, "pu", realPointer(), "u");
        VarId py = model_.addParameter(k, "py", realPointer(), "yz");
        VarId pz = model_.addParameter(k, "pz", realPointer(), "yz");
        VarId pc = model_.addParameter(k, "pcoef", realPointer(),
                                       "coef");
        model_.addCallBind(gx, px);
        model_.addCallBind(gu, pu);
        model_.addCallBind(gy, py);
        model_.addCallBind(gz, pz);
        model_.addCallBind(gc, pc);

        // Input ranges mirror the driver's uniformVector bounds.
        model_.setRange(pu, 0.0, 0.05);
        model_.setRange(py, 0.0, 0.05);
        model_.setRange(pz, 0.0, 0.05);
        model_.setRange(pc, 0.01, 0.05);
        // x = u + <polynomial tail in u,y,z and the coefficients>.
        // The tail is a same-sign Horner chain: its value never
        // exceeds r*(z + r*y) + t*(...) <= 0.006 on the ranges above,
        // and computing it costs at most 12 extra roundings.
        {
            ArithFact fx;
            fx.dst = px;
            fx.op = ArithOp::Add;
            fx.lhs = arithVar(pu);
            fx.rhs = arithLitRange(0.0, 0.006);
            fx.extraAmp = 12.0;
            model_.addArith(fx);
        }
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput uData_;
    CachedInput yData_;
    CachedInput zData_;
    CachedInput coefData_;
    model::BindKeyId keyX_ = model::internBindKey("x");
    model::BindKeyId keyU_ = model::internBindKey("u");
    model::BindKeyId keyYz_ = model::internBindKey("yz");
    model::BindKeyId keyCoef_ = model::internBindKey("coef");
};

} // namespace

std::unique_ptr<Benchmark>
makeEos()
{
    return std::make_unique<Eos>();
}

} // namespace hpcmixp::benchmarks
