/**
 * @file
 * iccg — incomplete Cholesky conjugate gradient fragment (Livermore
 * kernel 2). A log-depth reduction with non-unit strides:
 *
 *   x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]
 *
 * over halving index ranges. In-place on x, so each repetition resets
 * x from the pristine input first.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TX, class TV>
void
iccgCore(std::span<TX> x, std::span<const TX> x0,
         std::span<const TV> v, std::size_t n, std::size_t repeats)
{
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::copy(x0.begin(), x0.end(), x.begin());
        std::size_t ii = n;
        std::size_t ipntp = 0;
        do {
            std::size_t ipnt = ipntp;
            ipntp += ii;
            ii /= 2;
            std::size_t i = ipntp;
            for (std::size_t k = ipnt + 1; k < ipntp; k += 2) {
                ++i;
                x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
            }
        } while (ii > 0);
    }
}

class Iccg final : public KernelBase {
  public:
    Iccg() : KernelBase("iccg")
    {
        n_ = scaled(32768);
        repeats_ = 30;
        // ipntp reaches 2n; one extra slot for the k+1 read at the top.
        xData_ = uniformVector(0xB2001, 2 * n_ + 2, 0.0, 0.05);
        vData_ = uniformVector(0xB2002, 2 * n_ + 2, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "iccg"; }

    std::string
    description() const override
    {
        return "Incomplete Cholesky conjugate gradient";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        runtime::Precision px = pm.get(keyX_);
        plan.setKnob(kX, px);
        bindInput(plan, kX0, xData_, px, options, keyX_);
        bindInput(plan, kV, vData_, pm.get(keyV_), options, keyV_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        Buffer& x = ws.zeroed(kX, xData_.size(), plan.knob(kX));
        const Buffer& x0 = plan.input(kX0);
        const Buffer& v = plan.input(kV);

        runtime::dispatch2(
            x.precision(), v.precision(), [&](auto tx, auto tv) {
                using TX = typename decltype(tx)::type;
                using TV = typename decltype(tv)::type;
                iccgCore<TX, TV>(x.as<TX>(),
                                 std::span<const TX>(x0.as<TX>()),
                                 v.as<TV>(), n_, repeats_);
            });
        return {x.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kX, kV, kX0 };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("iccg.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gv = model_.addGlobal(m, "v", realPointer(), "v");

        FunctionId k = model_.addFunction(m, "kernel2");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId pv = model_.addParameter(k, "pv", realPointer(), "v");
        model_.addCallBind(gx, px);
        model_.addCallBind(gv, pv);

        // Dataflow facts for mixp-lint: x[i] = x[k] - v[k]*x[k-1] -
        // v[k+1]*x[k+1] — a subtraction chain over x carried through
        // the log-depth reduction levels.
        model_.markFact(gx, DataflowFact::Cancellation);
        model_.markFact(gx, DataflowFact::LoopCarried);
        model_.markDataflowAnalyzed();
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput xData_;
    CachedInput vData_;
    model::BindKeyId keyX_ = model::internBindKey("x");
    model::BindKeyId keyV_ = model::internBindKey("v");
};

} // namespace

std::unique_ptr<Benchmark>
makeIccg()
{
    return std::make_unique<Iccg>();
}

} // namespace hpcmixp::benchmarks
