/**
 * @file
 * gen-lin-recur — general linear recurrence equations (Livermore
 * kernel 6):
 *
 *   w[i] = 0.01 + sum_{k<i} b[k*n + i] * w[i-k-1]
 *
 * Triangular O(n^2) work over a dense coefficient matrix; the inner
 * dot product vectorizes, the outer recurrence does not.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TW, class TB>
void
genLinRecurCore(std::span<TW> w, std::span<const TB> b, std::size_t n,
                std::size_t repeats)
{
    using Acc = std::common_type_t<TW, TB>;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        for (std::size_t i = 1; i < n; ++i) {
            Acc acc = static_cast<Acc>(0.01);
            for (std::size_t k = 0; k < i; ++k)
                acc += static_cast<Acc>(b[k * n + i] * w[i - k - 1]);
            w[i] = static_cast<TW>(acc);
        }
    }
}

class GenLinRecur final : public KernelBase {
  public:
    GenLinRecur() : KernelBase("gen-lin-recur")
    {
        n_ = scaled(600, 16);
        repeats_ = 10;
        wData_ = uniformVector(0xB6001, n_, 0.0, 0.01);
        bData_ = uniformVector(0xB6002, n_ * n_, 0.0, 0.001);
        buildModel();
    }

    std::string name() const override { return "gen-lin-recur"; }

    std::string
    description() const override
    {
        return "General linear recurrence equations";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        bindInput(plan, kW, wData_, pm.get(keyW_), options, keyW_);
        bindInput(plan, kB, bData_, pm.get(keyB_), options, keyB_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        // The recurrence overwrites w; work on a workspace copy.
        Buffer& w = ws.copyOf(kW, plan.input(kW));
        const Buffer& b = plan.input(kB);

        runtime::dispatch2(
            w.precision(), b.precision(), [&](auto tw, auto tb) {
                using TW = typename decltype(tw)::type;
                using TB = typename decltype(tb)::type;
                genLinRecurCore<TW, TB>(w.as<TW>(), b.as<TB>(), n_,
                                        repeats_);
            });
        return {w.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kW, kB };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("gen-lin-recur.c");
        VarId gw = model_.addGlobal(m, "w", realPointer(), "w");
        VarId gb = model_.addGlobal(m, "b", realPointer(), "b");

        FunctionId k = model_.addFunction(m, "kernel6");
        VarId pw = model_.addParameter(k, "pw", realPointer(), "w");
        VarId pb = model_.addParameter(k, "pb", realPointer(), "b");
        model_.addCallBind(gw, pw);
        model_.addCallBind(gb, pb);

        // Dataflow facts for mixp-lint: w[i] sums b*w products over
        // all earlier entries — a reduction accumulator feeding a
        // triangular recurrence.
        model_.markFact(gw, DataflowFact::Accumulator);
        model_.markFact(gw, DataflowFact::LoopCarried);
        model_.markDataflowAnalyzed();
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput wData_;
    CachedInput bData_;
    model::BindKeyId keyW_ = model::internBindKey("w");
    model::BindKeyId keyB_ = model::internBindKey("b");
};

} // namespace

std::unique_ptr<Benchmark>
makeGenLinRecur()
{
    return std::make_unique<GenLinRecur>();
}

} // namespace hpcmixp::benchmarks
