/**
 * @file
 * innerprod — inner product (Livermore kernel 3).
 *
 *   q += z[k] * x[k]
 *
 * The accumulator q is its own tunable knob: accumulating in single
 * precision destroys far more accuracy than lowering the input arrays,
 * a classic mixed-precision lesson this kernel exposes. The reported
 * output is the mean product q/n.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TX, class TZ, class TQ>
TQ
innerprodCore(std::span<const TX> x, std::span<const TZ> z,
              std::size_t repeats)
{
    TQ q{};
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        q = TQ{};
        for (std::size_t k = 0; k < x.size(); ++k)
            q += static_cast<TQ>(z[k] * x[k]);
    }
    return q;
}

class Innerprod final : public KernelBase {
  public:
    Innerprod() : KernelBase("innerprod")
    {
        n_ = scaled(100000);
        repeats_ = 25;
        xData_ = uniformVector(0xB3001, n_, 0.0, 0.05);
        zData_ = uniformVector(0xB3002, n_, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "innerprod"; }

    std::string
    description() const override
    {
        return "Inner product";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        plan.setKnob(kQ, pm.get(keyQ_));
        bindInput(plan, kX, xData_, pm.get(keyX_), options, keyX_);
        bindInput(plan, kZ, zData_, pm.get(keyZ_), options, keyZ_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace&) const override
    {
        using runtime::Buffer;
        const Buffer& x = plan.input(kX);
        const Buffer& z = plan.input(kZ);

        double q = runtime::dispatch3(
            x.precision(), z.precision(), plan.knob(kQ),
            [&](auto tx, auto tz, auto tq) -> double {
                using TX = typename decltype(tx)::type;
                using TZ = typename decltype(tz)::type;
                using TQ = typename decltype(tq)::type;
                return static_cast<double>(innerprodCore<TX, TZ, TQ>(
                    x.as<TX>(), z.as<TZ>(), repeats_));
            });
        return {{q / static_cast<double>(n_)}};
    }

  private:
    enum Slot : std::size_t { kX, kZ, kQ };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("innerprod.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gz = model_.addGlobal(m, "z", realPointer(), "z");
        VarId gq = model_.addGlobal(m, "q", realScalar(), "q");

        FunctionId k = model_.addFunction(m, "kernel3");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId pz = model_.addParameter(k, "pz", realPointer(), "z");
        model_.addCallBind(gx, px);
        model_.addCallBind(gz, pz);
        // q accumulates element products: scalar value flow only.
        model_.addAssign(gq, px);
        model_.addAssign(gq, pz);

        // Dataflow facts for mixp-lint: q is a loop-carried reduction
        // accumulator; the input arrays carry no risk signals.
        model_.markFact(gq, DataflowFact::Accumulator);
        model_.markFact(gq, DataflowFact::LoopCarried);
        model_.markDataflowAnalyzed();

        // Input ranges mirror the driver's uniformVector bounds.
        model_.setRange(px, 0.0, 0.05);
        model_.setRange(pz, 0.0, 0.05);
        // q += z[k] * x[k] over the full array: n_ nonnegative
        // per-trip contributions, so the certified error bound grows
        // with the trip count — the static proof of what MP001 only
        // heuristically flags.
        {
            ArithFact fq;
            fq.dst = gq;
            fq.op = ArithOp::Mul;
            fq.lhs = arithVar(pz);
            fq.rhs = arithVar(px);
            fq.accumulate = true;
            fq.inLoop = true;
            fq.trips = n_;
            model_.addArith(fq);
        }
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput xData_;
    CachedInput zData_;
    model::BindKeyId keyX_ = model::internBindKey("x");
    model::BindKeyId keyZ_ = model::internBindKey("z");
    model::BindKeyId keyQ_ = model::internBindKey("q");
};

} // namespace

std::unique_ptr<Benchmark>
makeInnerprod()
{
    return std::make_unique<Innerprod>();
}

} // namespace hpcmixp::benchmarks
