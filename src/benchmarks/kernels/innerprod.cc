/**
 * @file
 * innerprod — inner product (Livermore kernel 3).
 *
 *   q += z[k] * x[k]
 *
 * The accumulator q is its own tunable knob: accumulating in single
 * precision destroys far more accuracy than lowering the input arrays,
 * a classic mixed-precision lesson this kernel exposes. The reported
 * output is the mean product q/n.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TX, class TZ, class TQ>
TQ
innerprodCore(std::span<const TX> x, std::span<const TZ> z,
              std::size_t repeats)
{
    TQ q{};
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        q = TQ{};
        for (std::size_t k = 0; k < x.size(); ++k)
            q += static_cast<TQ>(z[k] * x[k]);
    }
    return q;
}

class Innerprod final : public KernelBase {
  public:
    Innerprod() : KernelBase("innerprod")
    {
        n_ = scaled(100000);
        repeats_ = 25;
        xData_ = uniformVector(0xB3001, n_, 0.0, 0.05);
        zData_ = uniformVector(0xB3002, n_, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "innerprod"; }

    std::string
    description() const override
    {
        return "Inner product";
    }

    RunOutput
    run(const PrecisionMap& pm) const override
    {
        using runtime::Buffer;
        Buffer x = Buffer::fromDoubles(xData_, pm.get("x"));
        Buffer z = Buffer::fromDoubles(zData_, pm.get("z"));

        double q = runtime::dispatch3(
            x.precision(), z.precision(), pm.get("q"),
            [&](auto tx, auto tz, auto tq) -> double {
                using TX = typename decltype(tx)::type;
                using TZ = typename decltype(tz)::type;
                using TQ = typename decltype(tq)::type;
                return static_cast<double>(innerprodCore<TX, TZ, TQ>(
                    x.as<TX>(), z.as<TZ>(), repeats_));
            });
        return {{q / static_cast<double>(n_)}};
    }

  private:
    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("innerprod.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gz = model_.addGlobal(m, "z", realPointer(), "z");
        VarId gq = model_.addGlobal(m, "q", realScalar(), "q");

        FunctionId k = model_.addFunction(m, "kernel3");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId pz = model_.addParameter(k, "pz", realPointer(), "z");
        model_.addCallBind(gx, px);
        model_.addCallBind(gz, pz);
        // q accumulates element products: scalar value flow only.
        model_.addAssign(gq, px);
        model_.addAssign(gq, pz);
    }

    std::size_t n_;
    std::size_t repeats_;
    std::vector<double> xData_;
    std::vector<double> zData_;
};

} // namespace

std::unique_ptr<Benchmark>
makeInnerprod()
{
    return std::make_unique<Innerprod>();
}

} // namespace hpcmixp::benchmarks
