/**
 * @file
 * int-predict — integrate predictors (Livermore kernel 9):
 *
 *   px[i][0] = dm[9]*px[i][12] + dm[8]*px[i][11] + ... +
 *              dm[0]*(px[i][4] + px[i][5]) + px[i][2]
 *
 * Row-wise weighted reduction over a 13-column state matrix; writes
 * only column 0, so repetitions are idempotent.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

constexpr std::size_t kCols = 13;

template <class TP, class TD>
void
intPredictCore(std::span<TP> px, std::span<const TD> dm,
               std::size_t rows, std::size_t repeats)
{
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        for (std::size_t i = 0; i < rows; ++i) {
            const TP* row = &px[i * kCols];
            px[i * kCols] = static_cast<TP>(
                dm[9] * row[12] + dm[8] * row[11] + dm[7] * row[10] +
                dm[6] * row[9] + dm[5] * row[8] + dm[4] * row[7] +
                dm[3] * row[6] + dm[2] * row[5] + dm[1] * row[4] +
                dm[0] * (row[4] + row[5]) + row[2]);
        }
    }
}

class IntPredict final : public KernelBase {
  public:
    IntPredict() : KernelBase("int-predict")
    {
        rows_ = scaled(20000);
        repeats_ = 20;
        pxData_ = uniformVector(0xB9001, rows_ * kCols, 0.0, 0.05);
        dmData_ = uniformVector(0xB9002, 10, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "int-predict"; }

    std::string
    description() const override
    {
        return "Integrate predictors";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        bindInput(plan, kPx, pxData_, pm.get(keyPx_), options, keyPx_);
        bindInput(plan, kDm, dmData_, pm.get(keyDm_), options, keyDm_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        // Column 0 is overwritten; work on a workspace copy.
        Buffer& px = ws.copyOf(kPx, plan.input(kPx));
        const Buffer& dm = plan.input(kDm);

        runtime::dispatch2(
            px.precision(), dm.precision(), [&](auto tp, auto td) {
                using TP = typename decltype(tp)::type;
                using TD = typename decltype(td)::type;
                intPredictCore<TP, TD>(px.as<TP>(), dm.as<TD>(),
                                       rows_, repeats_);
            });
        return {px.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kPx, kDm };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("int-predict.c");
        VarId gpx = model_.addGlobal(m, "px", realPointer(), "px");
        VarId gdm = model_.addGlobal(m, "dm", realPointer(), "dm");

        FunctionId k = model_.addFunction(m, "kernel9");
        VarId ppx = model_.addParameter(k, "ppx", realPointer(), "px");
        VarId pdm = model_.addParameter(k, "pdm", realPointer(), "dm");
        model_.addCallBind(gpx, ppx);
        model_.addCallBind(gdm, pdm);

        // Input ranges mirror the driver's uniformVector bounds.
        model_.setRange(pdm, 0.0, 0.05);
        // The px matrix holds the pristine input columns...
        model_.addArith(ppx, ArithOp::Id, arithLitRange(0.0, 0.05));
        // ...and column 0, the weighted row reduction
        // sum(dm[j] * row[col]) + row[2]. Writes never feed reads
        // (only column 0 is written, columns 2..12 are read), so the
        // update is expressed against the input intervals, not
        // self-referentially: row[2] in [0, 0.05] plus a tail of ten
        // nonnegative products bounded by 0.0275. The reduction costs
        // ten products and ten same-sign adds over kappa = 1 inputs —
        // under 25 extra roundings.
        {
            ArithFact f0;
            f0.dst = ppx;
            f0.op = ArithOp::Add;
            f0.lhs = arithLitRange(0.0, 0.05);
            f0.rhs = arithLitRange(0.0, 0.0275);
            f0.extraAmp = 25.0;
            model_.addArith(f0);
        }
    }

    std::size_t rows_;
    std::size_t repeats_;
    CachedInput pxData_;
    CachedInput dmData_;
    model::BindKeyId keyPx_ = model::internBindKey("px");
    model::BindKeyId keyDm_ = model::internBindKey("dm");
};

} // namespace

std::unique_ptr<Benchmark>
makeIntPredict()
{
    return std::make_unique<IntPredict>();
}

} // namespace hpcmixp::benchmarks
