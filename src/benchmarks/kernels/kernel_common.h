#ifndef HPCMIXP_BENCHMARKS_KERNELS_KERNEL_COMMON_H_
#define HPCMIXP_BENCHMARKS_KERNELS_KERNEL_COMMON_H_

/**
 * @file
 * Shared scaffolding for the kernel benchmarks.
 *
 * Every kernel follows the same shape: seeded input vectors prepared at
 * construction, an mp::Buffer per tunable array knob, and a region
 * template whose arithmetic type follows C++ promotion of the buffer
 * element types — lowering only one input array inserts genuine
 * float<->double casts, reproducing the cast-overhead effect the paper
 * discusses for partial configurations.
 */

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <utility>
#include <vector>

#include "benchmarks/benchmark.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"

namespace hpcmixp::benchmarks {

/** Base for the kernels: isKernel() and model storage. */
class KernelBase : public Benchmark {
  public:
    bool isKernel() const override { return true; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

  protected:
    explicit KernelBase(const std::string& name) : model_(name) {}

    model::ProgramModel model_;
};

} // namespace hpcmixp::benchmarks

#endif // HPCMIXP_BENCHMARKS_KERNELS_KERNEL_COMMON_H_
