/**
 * @file
 * tridiag — tri-diagonal elimination, below diagonal (Livermore
 * kernel 5):
 *
 *   x[i] = z[i] * (y[i] - x[i-1])
 *
 * A first-order linear recurrence: inherently sequential, so single
 * precision buys little — the kernel the paper reports at ~1.0x for
 * every algorithm. With |z| < 1 the recurrence is contractive, keeping
 * rounding error from accumulating.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TX, class TY, class TZ>
void
tridiagCore(std::span<TX> x, std::span<const TY> y,
            std::span<const TZ> z, std::size_t repeats)
{
    for (std::size_t rep = 0; rep < repeats; ++rep)
        for (std::size_t i = 1; i < x.size(); ++i)
            x[i] = static_cast<TX>(z[i] * (y[i] - x[i - 1]));
}

class Tridiag final : public KernelBase {
  public:
    Tridiag() : KernelBase("tridiag")
    {
        n_ = scaled(100000);
        repeats_ = 20;
        xData_ = uniformVector(0xB5001, n_, 0.0, 0.05);
        yData_ = uniformVector(0xB5002, n_, 0.0, 0.05);
        zData_ = uniformVector(0xB5003, n_, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "tridiag"; }

    std::string
    description() const override
    {
        return "Tridiagonal linear systems solution";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        bindInput(plan, kX, xData_, pm.get(keyX_), options);
        bindInput(plan, kY, yData_, pm.get(keyY_), options);
        bindInput(plan, kZ, zData_, pm.get(keyZ_), options);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        // The recurrence overwrites x; work on a workspace copy.
        Buffer& x = ws.copyOf(kX, plan.input(kX));
        const Buffer& y = plan.input(kY);
        const Buffer& z = plan.input(kZ);

        runtime::dispatch3(
            x.precision(), y.precision(), z.precision(),
            [&](auto tx, auto ty, auto tz) {
                using TX = typename decltype(tx)::type;
                using TY = typename decltype(ty)::type;
                using TZ = typename decltype(tz)::type;
                tridiagCore<TX, TY, TZ>(x.as<TX>(), y.as<TY>(),
                                        z.as<TZ>(), repeats_);
            });
        return {x.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kX, kY, kZ };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("tridiag.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gy = model_.addGlobal(m, "y", realPointer(), "y");
        VarId gz = model_.addGlobal(m, "z", realPointer(), "z");

        FunctionId k = model_.addFunction(m, "kernel5");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId py = model_.addParameter(k, "py", realPointer(), "y");
        VarId pz = model_.addParameter(k, "pz", realPointer(), "z");
        model_.addCallBind(gx, px);
        model_.addCallBind(gy, py);
        model_.addCallBind(gz, pz);

        // Dataflow facts for mixp-lint: the first-order recurrence
        // subtracts the carried x[i-1] from y[i]; both operands see
        // cancellation, x additionally carries across iterations.
        model_.markFact(gx, DataflowFact::Cancellation);
        model_.markFact(gx, DataflowFact::LoopCarried);
        model_.markFact(gy, DataflowFact::Cancellation);
        model_.markDataflowAnalyzed();
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput xData_;
    CachedInput yData_;
    CachedInput zData_;
    model::BindKeyId keyX_ = model::internBindKey("x");
    model::BindKeyId keyY_ = model::internBindKey("y");
    model::BindKeyId keyZ_ = model::internBindKey("z");
};

} // namespace

std::unique_ptr<Benchmark>
makeTridiag()
{
    return std::make_unique<Tridiag>();
}

} // namespace hpcmixp::benchmarks
