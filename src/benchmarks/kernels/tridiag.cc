/**
 * @file
 * tridiag — tri-diagonal elimination, below diagonal (Livermore
 * kernel 5):
 *
 *   x[i] = z[i] * (y[i] - x[i-1])
 *
 * A first-order linear recurrence: inherently sequential, so single
 * precision buys little — the kernel the paper reports at ~1.0x for
 * every algorithm. With |z| < 1 the recurrence is contractive, keeping
 * rounding error from accumulating.
 */

#include <cmath>
#include <limits>

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TX, class TY, class TZ>
void
tridiagCore(std::span<TX> x, std::span<const TY> y,
            std::span<const TZ> z, std::size_t repeats)
{
    for (std::size_t rep = 0; rep < repeats; ++rep)
        for (std::size_t i = 1; i < x.size(); ++i)
            x[i] = static_cast<TX>(z[i] * (y[i] - x[i - 1]));
}

class Tridiag final : public KernelBase {
  public:
    Tridiag() : KernelBase("tridiag")
    {
        n_ = scaled(100000);
        repeats_ = 20;
        xData_ = uniformVector(0xB5001, n_, 0.0, 0.05);
        yData_ = uniformVector(0xB5002, n_, 0.0, 0.05);
        zData_ = uniformVector(0xB5003, n_, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "tridiag"; }

    std::string
    description() const override
    {
        return "Tridiagonal linear systems solution";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        bindInput(plan, kX, xData_, pm.get(keyX_), options, keyX_);
        bindInput(plan, kY, yData_, pm.get(keyY_), options, keyY_);
        bindInput(plan, kZ, zData_, pm.get(keyZ_), options, keyZ_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        // The recurrence overwrites x; work on a workspace copy.
        Buffer& x = ws.copyOf(kX, plan.input(kX));
        const Buffer& y = plan.input(kY);
        const Buffer& z = plan.input(kZ);

        runtime::dispatch3(
            x.precision(), y.precision(), z.precision(),
            [&](auto tx, auto ty, auto tz) {
                using TX = typename decltype(tx)::type;
                using TY = typename decltype(ty)::type;
                using TZ = typename decltype(tz)::type;
                tridiagCore<TX, TY, TZ>(x.as<TX>(), y.as<TY>(),
                                        z.as<TZ>(), repeats_);
            });
        return {x.toDoubles()};
    }

    bool supportsRefinement() const override { return true; }

    /**
     * Iterative-refinement recovery for the recurrence, seen as the
     * unit-lower-bidiagonal solve A x = b with x[0] pinned to its
     * input value, A[i][i] = 1, A[i][i-1] = z[i], b[i] = z[i]*y[i].
     * Low-precision execute, then: double residual against the exact
     * inputs, correction forward-solve rounded through the x cluster's
     * storage type, correction applied in double. Throws
     * RefineDiverged on a non-finite or non-decreasing residual, and
     * when maxIterations correction steps miss the target — never a
     * hang.
     */
    RunOutput
    executeRefined(const RunPlan& plan, runtime::RunWorkspace& ws,
                   const RefineControl& control) const override
    {
        RunOutput out = execute(plan, ws);
        std::vector<double>& x = out.values;
        std::span<const double> x0 = xData_.doubles();
        std::span<const double> y = yData_.doubles();
        std::span<const double> z = zData_.doubles();
        std::size_t n = x.size();
        runtime::Precision p = plan.input(kX).precision();

        std::vector<double> r(n);
        double prevNorm = std::numeric_limits<double>::infinity();
        for (std::size_t iter = 0; iter < control.maxIterations;
             ++iter) {
            r[0] = x0[0] - x[0];
            double norm = std::abs(r[0]);
            for (std::size_t i = 1; i < n; ++i) {
                r[i] = z[i] * (y[i] - x[i - 1]) - x[i];
                norm = std::max(norm, std::abs(r[i]));
            }
            if (!std::isfinite(norm))
                throw RefineDiverged(
                    "tridiag refinement: non-finite residual");
            if (norm <= control.targetResidual)
                return out;
            if (norm >= prevNorm)
                throw RefineDiverged(
                    "tridiag refinement: residual stopped decreasing");
            prevNorm = norm;
            // Correction solve A d = r at the configured precision:
            // each step rounds through the storage type, so the solve
            // is as cheap (and as rough) as the original execute. The
            // residual is pre-scaled by a power of two into the
            // storage type's normal range (the solve is linear, so
            // the factor commutes exactly) — without this the 16-bit
            // formats flush late-iteration corrections to subnormals
            // or zero and the residual stalls above the target.
            int normExp = 0;
            std::frexp(norm, &normExp);
            const double scale = std::ldexp(1.0, 1 - normExp);
            runtime::dispatch1(p, [&](auto tag) {
                using T = typename decltype(tag)::type;
                T carry = static_cast<T>(r[0] * scale);
                x[0] += static_cast<double>(carry) / scale;
                for (std::size_t i = 1; i < n; ++i) {
                    carry = static_cast<T>(
                        r[i] * scale -
                        z[i] * static_cast<double>(carry));
                    x[i] += static_cast<double>(carry) / scale;
                }
            });
        }
        throw RefineDiverged(
            "tridiag refinement: target residual not reached within "
            "the iteration cap");
    }

  private:
    enum Slot : std::size_t { kX, kY, kZ };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("tridiag.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gy = model_.addGlobal(m, "y", realPointer(), "y");
        VarId gz = model_.addGlobal(m, "z", realPointer(), "z");

        FunctionId k = model_.addFunction(m, "kernel5");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId py = model_.addParameter(k, "py", realPointer(), "y");
        VarId pz = model_.addParameter(k, "pz", realPointer(), "z");
        model_.addCallBind(gx, px);
        model_.addCallBind(gy, py);
        model_.addCallBind(gz, pz);

        // Dataflow facts for mixp-lint: the first-order recurrence
        // subtracts the carried x[i-1] from y[i]; both operands see
        // cancellation, x additionally carries across iterations.
        model_.markFact(gx, DataflowFact::Cancellation);
        model_.markFact(gx, DataflowFact::LoopCarried);
        model_.markFact(gy, DataflowFact::Cancellation);
        model_.markDataflowAnalyzed();
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput xData_;
    CachedInput yData_;
    CachedInput zData_;
    model::BindKeyId keyX_ = model::internBindKey("x");
    model::BindKeyId keyY_ = model::internBindKey("y");
    model::BindKeyId keyZ_ = model::internBindKey("z");
};

} // namespace

std::unique_ptr<Benchmark>
makeTridiag()
{
    return std::make_unique<Tridiag>();
}

} // namespace hpcmixp::benchmarks
