/**
 * @file
 * hydro-1d — hydrodynamics fragment (Livermore kernel 1).
 *
 *   x[k] = coef[0] + y[k] * (coef[1]*z[k+10] + coef[2]*z[k+11])
 *
 * Streaming, embarrassingly vectorizable: the benchmark where single
 * precision pays through doubled SIMD width and halved memory traffic.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

/** Region template: arithmetic follows promotion of TX/TY/TZ/TC. */
template <class TX, class TY, class TZ, class TC>
void
hydro1dCore(std::span<TX> x, std::span<const TY> y,
            std::span<const TZ> z, std::span<const TC> coef,
            std::size_t repeats)
{
    std::size_t n = x.size();
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        for (std::size_t k = 0; k < n; ++k) {
            x[k] = static_cast<TX>(
                coef[0] +
                y[k] * (coef[1] * z[k + 10] + coef[2] * z[k + 11]));
        }
    }
}

class Hydro1d final : public KernelBase {
  public:
    Hydro1d() : KernelBase("hydro-1d")
    {
        n_ = scaled(100000);
        repeats_ = 12;
        yData_ = uniformVector(0xB1001, n_, 0.0, 0.05);
        zData_ = uniformVector(0xB1002, n_ + 11, 0.0, 0.05);
        coefData_ = uniformVector(0xB1003, 3, 0.01, 0.05);
        buildModel();
    }

    std::string name() const override { return "hydro-1d"; }

    std::string
    description() const override
    {
        return "Hydrodynamics fragment";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        plan.setKnob(kX, pm.get(keyX_));
        bindInput(plan, kY, yData_, pm.get(keyY_), options, keyY_);
        bindInput(plan, kZ, zData_, pm.get(keyZ_), options, keyZ_);
        bindInput(plan, kCoef, coefData_, pm.get(keyCoef_), options, keyCoef_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        Buffer& x = ws.zeroed(kX, n_, plan.knob(kX));
        const Buffer& y = plan.input(kY);
        const Buffer& z = plan.input(kZ);
        const Buffer& coef = plan.input(kCoef);

        runtime::dispatch4(
            x.precision(), y.precision(), z.precision(),
            coef.precision(), [&](auto tx, auto ty, auto tz, auto tc) {
                using TX = typename decltype(tx)::type;
                using TY = typename decltype(ty)::type;
                using TZ = typename decltype(tz)::type;
                using TC = typename decltype(tc)::type;
                hydro1dCore<TX, TY, TZ, TC>(
                    x.as<TX>(), y.as<TY>(), z.as<TZ>(), coef.as<TC>(),
                    repeats_);
            });
        return {x.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kX, kY, kZ, kCoef };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("hydro-1d.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gy = model_.addGlobal(m, "y", realPointer(), "y");
        VarId gz = model_.addGlobal(m, "z", realPointer(), "z");
        VarId gc = model_.addGlobal(m, "coef", realPointer(), "coef");

        FunctionId k = model_.addFunction(m, "kernel1");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId py = model_.addParameter(k, "py", realPointer(), "y");
        VarId pz = model_.addParameter(k, "pz", realPointer(), "z");
        VarId pc = model_.addParameter(k, "pcoef", realPointer(), "coef");
        model_.addCallBind(gx, px);
        model_.addCallBind(gy, py);
        model_.addCallBind(gz, pz);
        model_.addCallBind(gc, pc);

        // Dataflow facts for mixp-lint: the stencil is a pure
        // multiply-add with no reductions, recurrences, subtractions
        // or divisions — every cluster is analyzed and clean.
        model_.markDataflowAnalyzed();
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput yData_;
    CachedInput zData_;
    CachedInput coefData_;
    model::BindKeyId keyX_ = model::internBindKey("x");
    model::BindKeyId keyY_ = model::internBindKey("y");
    model::BindKeyId keyZ_ = model::internBindKey("z");
    model::BindKeyId keyCoef_ = model::internBindKey("coef");
};

} // namespace

std::unique_ptr<Benchmark>
makeHydro1d()
{
    return std::make_unique<Hydro1d>();
}

} // namespace hpcmixp::benchmarks
