/**
 * @file
 * banded-lin-eq — banded linear equations fragment (Livermore
 * kernel 4): a strided dot-product reduction updating two solution
 * entries per sweep.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TX, class TY>
void
bandedCore(std::span<TX> x, std::span<const TY> y, std::size_t n,
           std::size_t repeats)
{
    using Acc = std::common_type_t<TX, TY>;
    std::size_t m = (n - 7) / 2;

    // The kernel overwrites x[k-1]; remember the pristine values so
    // every repetition computes from the same state.
    std::vector<std::pair<std::size_t, TX>> saved;
    for (std::size_t k = 6; k < n; k += m)
        saved.emplace_back(k - 1, x[k - 1]);

    for (std::size_t rep = 0; rep < repeats; ++rep) {
        for (const auto& [idx, val] : saved)
            x[idx] = val;
        for (std::size_t k = 6; k < n; k += m) {
            std::size_t lw = k - 6;
            Acc temp = x[k - 1];
            // The classic loop walks lw with a fixed trip count; we
            // additionally stop at the array end (the original reads
            // into adjacent COMMON-block storage).
            for (std::size_t j = 4; j < n && lw < n; j += 5) {
                temp -= static_cast<Acc>(x[lw] * y[j]);
                ++lw;
            }
            x[k - 1] = static_cast<TX>(y[4] * temp);
        }
    }
}

class BandedLinEq final : public KernelBase {
  public:
    BandedLinEq() : KernelBase("banded-lin-eq")
    {
        n_ = scaled(200001);
        repeats_ = 40;
        xData_ = uniformVector(0xB4001, n_, 0.0, 0.05);
        yData_ = uniformVector(0xB4002, n_, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "banded-lin-eq"; }

    std::string
    description() const override
    {
        return "Banded linear systems solution";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        bindInput(plan, kX, xData_, pm.get(keyX_), options, keyX_);
        bindInput(plan, kY, yData_, pm.get(keyY_), options, keyY_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        // The kernel updates x in place; work on a workspace copy so
        // the plan's input view stays pristine.
        Buffer& x = ws.copyOf(kX, plan.input(kX));
        const Buffer& y = plan.input(kY);

        runtime::dispatch2(
            x.precision(), y.precision(), [&](auto tx, auto ty) {
                using TX = typename decltype(tx)::type;
                using TY = typename decltype(ty)::type;
                bandedCore<TX, TY>(x.as<TX>(), y.as<TY>(), n_,
                                   repeats_);
            });
        return {x.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kX, kY };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("banded-lin-eq.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gy = model_.addGlobal(m, "y", realPointer(), "y");

        FunctionId k = model_.addFunction(m, "kernel4");
        VarId px = model_.addParameter(k, "px", realPointer(), "x");
        VarId py = model_.addParameter(k, "py", realPointer(), "y");
        model_.addCallBind(gx, px);
        model_.addCallBind(gy, py);

        // Dataflow facts for mixp-lint: the temp reduction subtracts
        // x*y products into x[k-1] each sweep, so x is an accumulator
        // with cancellation, carried across the strided loop.
        model_.markFact(gx, DataflowFact::Accumulator);
        model_.markFact(gx, DataflowFact::Cancellation);
        model_.markFact(gx, DataflowFact::LoopCarried);
        model_.markDataflowAnalyzed();
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput xData_;
    CachedInput yData_;
    model::BindKeyId keyX_ = model::internBindKey("x");
    model::BindKeyId keyY_ = model::internBindKey("y");
};

} // namespace

std::unique_ptr<Benchmark>
makeBandedLinEq()
{
    return std::make_unique<BandedLinEq>();
}

} // namespace hpcmixp::benchmarks
