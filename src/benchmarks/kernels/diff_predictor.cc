/**
 * @file
 * diff-predictor — difference predictors (Livermore kernel 10).
 *
 * A chain of first differences cascading through ten columns of the
 * px state matrix per row. Writes feed later reads, so repetitions
 * reset the matrix from pristine input — making the kernel strongly
 * memory-bound (the copy traffic halves in single precision).
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

constexpr std::size_t kCols = 14;

template <class TP, class TC>
void
diffPredictorCore(std::span<TP> px, std::span<const TP> px0,
                  std::span<const TC> cx, std::size_t rows,
                  std::size_t repeats)
{
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::copy(px0.begin(), px0.end(), px.begin());
        for (std::size_t i = 0; i < rows; ++i) {
            TP* row = &px[i * kCols];
            TP ar = static_cast<TP>(cx[i]);
            TP br = ar - row[4];
            row[4] = ar;
            TP cr = br - row[5];
            row[5] = br;
            ar = cr - row[6];
            row[6] = cr;
            br = ar - row[7];
            row[7] = ar;
            cr = br - row[8];
            row[8] = br;
            ar = cr - row[9];
            row[9] = cr;
            br = ar - row[10];
            row[10] = ar;
            cr = br - row[11];
            row[11] = br;
            row[13] = static_cast<TP>(cr - row[12]);
            row[12] = cr;
        }
    }
}

class DiffPredictor final : public KernelBase {
  public:
    DiffPredictor() : KernelBase("diff-predictor")
    {
        rows_ = scaled(15000);
        repeats_ = 15;
        pxData_ = uniformVector(0xBA001, rows_ * kCols, 0.0, 0.05);
        cxData_ = uniformVector(0xBA002, rows_, 0.0, 0.05);
        buildModel();
    }

    std::string name() const override { return "diff-predictor"; }

    std::string
    description() const override
    {
        return "Difference predictors";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        runtime::Precision pp = pm.get(keyPx_);
        plan.setKnob(kPx, pp);
        bindInput(plan, kPx0, pxData_, pp, options, keyPx_);
        bindInput(plan, kCx, cxData_, pm.get(keyCx_), options, keyCx_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        Buffer& px = ws.zeroed(kPx, pxData_.size(), plan.knob(kPx));
        const Buffer& px0 = plan.input(kPx0);
        const Buffer& cx = plan.input(kCx);

        runtime::dispatch2(
            px.precision(), cx.precision(), [&](auto tp, auto tc) {
                using TP = typename decltype(tp)::type;
                using TC = typename decltype(tc)::type;
                diffPredictorCore<TP, TC>(
                    px.as<TP>(), std::span<const TP>(px0.as<TP>()),
                    cx.as<TC>(), rows_, repeats_);
            });
        return {px.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kPx, kCx, kPx0 };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("diff-predictor.c");
        VarId gpx = model_.addGlobal(m, "px", realPointer(), "px");
        VarId gcx = model_.addGlobal(m, "cx", realPointer(), "cx");

        FunctionId k = model_.addFunction(m, "kernel10");
        VarId ppx = model_.addParameter(k, "ppx", realPointer(), "px");
        VarId pcx = model_.addParameter(k, "pcx", realPointer(), "cx");
        model_.addCallBind(gpx, ppx);
        model_.addCallBind(gcx, pcx);

        // The px matrix is overwritten by a cascade of first
        // differences of its own columns — the classic cancellation /
        // loop-carried pairing.
        model_.markFact(ppx, DataflowFact::Cancellation);
        model_.markFact(ppx, DataflowFact::LoopCarried);
        model_.setRange(pcx, 0.0, 0.05);
        // px starts as the pristine input copy...
        model_.addArith(ppx, ArithOp::Id, arithLitRange(0.0, 0.05));
        // ...then each row chains differences of px into px. The
        // self-referential subtraction has no annotated trip bound,
        // so the analysis widens it — exactly right: the cascade's
        // range doubles per column and its error amplification is
        // unbounded in the worst case.
        {
            ArithFact fd;
            fd.dst = ppx;
            fd.op = ArithOp::Sub;
            fd.lhs = arithVar(ppx);
            fd.rhs = arithVar(ppx);
            fd.inLoop = true;
            model_.addArith(fd);
        }
    }

    std::size_t rows_;
    std::size_t repeats_;
    CachedInput pxData_;
    CachedInput cxData_;
    model::BindKeyId keyPx_ = model::internBindKey("px");
    model::BindKeyId keyCx_ = model::internBindKey("cx");
};

} // namespace

std::unique_ptr<Benchmark>
makeDiffPredictor()
{
    return std::make_unique<DiffPredictor>();
}

} // namespace hpcmixp::benchmarks
