/**
 * @file
 * planckian — Planckian distribution (Livermore kernel 22):
 *
 *   y[k] = u[k] / v[k];  w[k] = x[k] / (exp(y[k]) - 1)
 *
 * Transcendental-heavy: single precision swaps exp() for expf(),
 * a large throughput win. The input arrays (x, u, v) are carved from
 * one pool allocation and the outputs (w, y) from another, giving the
 * two-cluster structure the paper reports for this kernel.
 */

#include "benchmarks/kernels/kernel_common.h"
#include "benchmarks/kernels/kernels.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TIn, class TOut>
void
planckianCore(std::span<const TIn> x, std::span<const TIn> u,
              std::span<const TIn> v, std::span<TOut> w,
              std::span<TOut> y, std::size_t repeats)
{
    std::size_t n = w.size();
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        for (std::size_t k = 0; k < n; ++k) {
            y[k] = static_cast<TOut>(u[k] / v[k]);
            w[k] = static_cast<TOut>(
                x[k] / (std::exp(y[k]) - TOut{1}));
        }
    }
}

class Planckian final : public KernelBase {
  public:
    Planckian() : KernelBase("planckian")
    {
        n_ = scaled(60000);
        repeats_ = 10;
        xData_ = uniformVector(0xBC001, n_, 0.0, 0.05);
        uData_ = uniformVector(0xBC002, n_, 0.5, 2.0);
        vData_ = uniformVector(0xBC003, n_, 1.0, 2.0);
        buildModel();
    }

    std::string name() const override { return "planckian"; }

    std::string
    description() const override
    {
        return "Planckian distribution";
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        runtime::Precision pin = pm.get(keyIn_);
        plan.setKnob(kW, pm.get(keyOut_));
        bindInput(plan, kX, xData_, pin, options, keyIn_);
        bindInput(plan, kU, uData_, pin, options, keyIn_);
        bindInput(plan, kV, vData_, pin, options, keyIn_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        const Buffer& x = plan.input(kX);
        const Buffer& u = plan.input(kU);
        const Buffer& v = plan.input(kV);
        Buffer& w = ws.zeroed(kW, n_, plan.knob(kW));
        Buffer& y = ws.zeroed(kY, n_, plan.knob(kW));

        runtime::dispatch2(
            x.precision(), w.precision(), [&](auto ti, auto to) {
                using TIn = typename decltype(ti)::type;
                using TOut = typename decltype(to)::type;
                planckianCore<TIn, TOut>(
                    std::span<const TIn>(x.as<TIn>()),
                    std::span<const TIn>(u.as<TIn>()),
                    std::span<const TIn>(v.as<TIn>()), w.as<TOut>(),
                    y.as<TOut>(), repeats_);
            });
        RunOutput out;
        out.values = w.toDoubles();
        auto ys = y.toDoubles();
        out.values.insert(out.values.end(), ys.begin(), ys.end());
        return out;
    }

  private:
    enum Slot : std::size_t { kX, kU, kV, kW, kY };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("planckian.c");
        VarId inPool = model_.addGlobal(m, "in_pool", realPointer(),
                                        "in");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "in");
        VarId gu = model_.addGlobal(m, "u", realPointer(), "in");
        VarId gv = model_.addGlobal(m, "v", realPointer(), "in");
        model_.addAssign(gx, inPool);
        model_.addAssign(gu, inPool);
        model_.addAssign(gv, inPool);

        VarId outPool = model_.addGlobal(m, "out_pool", realPointer(),
                                         "out");
        VarId gw = model_.addGlobal(m, "w", realPointer(), "out");
        VarId gy = model_.addGlobal(m, "y", realPointer(), "out");
        model_.addAssign(gw, outPool);
        model_.addAssign(gy, outPool);

        FunctionId k = model_.addFunction(m, "kernel22");
        VarId px = model_.addParameter(k, "px", realPointer(), "in");
        VarId pu = model_.addParameter(k, "pu", realPointer(), "in");
        VarId pv = model_.addParameter(k, "pv", realPointer(), "in");
        VarId pw = model_.addParameter(k, "pw", realPointer(), "out");
        VarId py = model_.addParameter(k, "py", realPointer(), "out");
        model_.addCallBind(gx, px);
        model_.addCallBind(gu, pu);
        model_.addCallBind(gv, pv);
        model_.addCallBind(gw, pw);
        model_.addCallBind(gy, py);

        // Input ranges mirror the driver's uniformVector bounds.
        model_.setRange(px, 0.0, 0.05);
        model_.setRange(pu, 0.5, 2.0);
        model_.setRange(pv, 1.0, 2.0);
        // y = u / v.
        model_.addArith(py, ArithOp::Div, arithVar(pu), arithVar(pv));
        // w = x / (exp(y) - 1). The denominator is folded into a
        // literal interval [e^0.25 - 1, e^2 - 1]; its round-off
        // contribution is covered by extraAmp: the relative error of
        // exp(y) - 1 is at most (y e^y/(e^y-1)) * kappa_y * u
        // (<= 2.32 * 3 u on y in [0.25, 2]) for the propagated part,
        // plus e^y/(e^y-1) <= 4.6 u for exp's own rounding and one
        // rounding for the subtraction — under 13 u, 15 with margin.
        {
            ArithFact fw;
            fw.dst = pw;
            fw.op = ArithOp::Div;
            fw.lhs = arithVar(px);
            fw.rhs = arithLitRange(0.284, 6.389);
            fw.extraAmp = 15.0;
            model_.addArith(fw);
        }
    }

    std::size_t n_;
    std::size_t repeats_;
    CachedInput xData_;
    CachedInput uData_;
    CachedInput vData_;
    model::BindKeyId keyIn_ = model::internBindKey("in");
    model::BindKeyId keyOut_ = model::internBindKey("out");
};

} // namespace

std::unique_ptr<Benchmark>
makePlanckian()
{
    return std::make_unique<Planckian>();
}

} // namespace hpcmixp::benchmarks
