#ifndef HPCMIXP_BENCHMARKS_KERNELS_KERNELS_H_
#define HPCMIXP_BENCHMARKS_KERNELS_KERNELS_H_

/**
 * @file
 * Factories for the ten kernel benchmarks (Table I).
 *
 * The kernels are Livermore-loop-lineage fragments: easy to understand,
 * no I/O, randomly initialized inputs — the suite's recommended starting
 * point for debugging mixed-precision tools (paper Section III-B).
 */

#include <memory>

#include "benchmarks/benchmark.h"

namespace hpcmixp::benchmarks {

std::unique_ptr<Benchmark> makeBandedLinEq();   ///< LFK4
std::unique_ptr<Benchmark> makeDiffPredictor(); ///< LFK10
std::unique_ptr<Benchmark> makeEos();           ///< LFK7
std::unique_ptr<Benchmark> makeGenLinRecur();   ///< LFK6
std::unique_ptr<Benchmark> makeHydro1d();       ///< LFK1
std::unique_ptr<Benchmark> makeIccg();          ///< LFK2
std::unique_ptr<Benchmark> makeInnerprod();     ///< LFK3
std::unique_ptr<Benchmark> makeIntPredict();    ///< LFK9
std::unique_ptr<Benchmark> makePlanckian();     ///< LFK22
std::unique_ptr<Benchmark> makeTridiag();       ///< LFK5

} // namespace hpcmixp::benchmarks

#endif // HPCMIXP_BENCHMARKS_KERNELS_KERNELS_H_
