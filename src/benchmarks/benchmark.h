#ifndef HPCMIXP_BENCHMARKS_BENCHMARK_H_
#define HPCMIXP_BENCHMARKS_BENCHMARK_H_

/**
 * @file
 * The benchmark abstraction of HPC-MixPBench.
 *
 * A Benchmark bundles:
 *  - a mixed-precision *executable*: run() executes the workload with
 *    the precision of each tunable knob chosen at runtime (region
 *    templates over mp::Buffer storage, see runtime/dispatch.h);
 *  - a ProgramModel mirroring the benchmark's source structure, whose
 *    variables carry *bind keys* naming the runtime knobs they control;
 *  - metadata: kernel vs application, preferred quality metric
 *    (MAE for all programs except K-means, which uses MCR — paper
 *    Section IV).
 *
 * run() must be deterministic for a fixed PrecisionMap: all synthetic
 * inputs are generated from fixed seeds, so verification compares
 * numerics only.
 */

#include <string>
#include <vector>

#include "model/program_model.h"
#include "runtime/precision.h"

namespace hpcmixp::benchmarks {

/** Precision assignment for a benchmark's runtime knobs. */
class PrecisionMap {
  public:
    /** Precision of knob @p key; unmentioned knobs default to double. */
    runtime::Precision get(const std::string& key) const;

    /** Set knob @p key to @p p. */
    void set(const std::string& key, runtime::Precision p);

    /** True when every knob is left at double precision. */
    bool allDouble() const;

  private:
    std::vector<std::pair<std::string, runtime::Precision>> entries_;
};

/** The canonical output of one benchmark run. */
struct RunOutput {
    std::vector<double> values; ///< widened output vector (may hold NaN)
};

/** One benchmark program of the suite. */
class Benchmark {
  public:
    virtual ~Benchmark() = default;

    /** Suite-unique name, e.g. "hydro-1d" or "lavamd". */
    virtual std::string name() const = 0;

    /** One-line description (Table I / Section III-B). */
    virtual std::string description() const = 0;

    /** True for kernels, false for proxy applications. */
    virtual bool isKernel() const = 0;

    /** Default quality metric name ("MAE", or "MCR" for K-means). */
    virtual std::string qualityMetric() const { return "MAE"; }

    /** The program model consumed by the Typeforge analysis. */
    virtual const model::ProgramModel& programModel() const = 0;

    /** Execute the workload under @p precisions. */
    virtual RunOutput run(const PrecisionMap& precisions) const = 0;
};

} // namespace hpcmixp::benchmarks

#endif // HPCMIXP_BENCHMARKS_BENCHMARK_H_
