#ifndef HPCMIXP_BENCHMARKS_BENCHMARK_H_
#define HPCMIXP_BENCHMARKS_BENCHMARK_H_

/**
 * @file
 * The benchmark abstraction of HPC-MixPBench.
 *
 * A Benchmark bundles:
 *  - a mixed-precision *executable*: run() executes the workload with
 *    the precision of each tunable knob chosen at runtime (region
 *    templates over mp::Buffer storage, see runtime/dispatch.h);
 *  - a ProgramModel mirroring the benchmark's source structure, whose
 *    variables carry *bind keys* naming the runtime knobs they control;
 *  - metadata: kernel vs application, preferred quality metric
 *    (MAE for all programs except K-means, which uses MCR — paper
 *    Section IV).
 *
 * Execution is split into two phases so the tuner pays configuration
 * cost once, not once per timed repetition:
 *
 *  - prepare(pm) resolves every knob of the PrecisionMap and binds the
 *    precision-converted input views into a RunPlan. Input conversion
 *    goes through a per-benchmark immutable CachedInput, so each
 *    source array is converted to a given precision at most once per
 *    process.
 *  - execute(plan, workspace) runs the timed kernel region against a
 *    reusable RunWorkspace that recycles output/scratch storage across
 *    repetitions and configurations.
 *
 * run() composes the two against a private workspace; user benchmarks
 * may override run() alone (simplest) or the prepare()/execute() pair.
 *
 * run()/execute() must be deterministic for a fixed PrecisionMap: all
 * synthetic inputs are generated from fixed seeds, so verification
 * compares numerics only.
 */

#include <cstddef>
#include <deque>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "model/bind_keys.h"
#include "model/program_model.h"
#include "runtime/buffer.h"
#include "runtime/precision.h"
#include "runtime/profiler.h"
#include "runtime/workspace.h"

namespace hpcmixp::benchmarks {

/**
 * Precision assignment for a benchmark's runtime knobs.
 *
 * Keys are stored interned (model::BindKeyId), so the per-prepare
 * lookups are integer scans of a short vector rather than repeated
 * string comparisons. Querying a key that no ProgramModel variable
 * declares warns once per key — such a key can never be set by the
 * tuner, so the query is almost certainly a typo'd knob name.
 */
class PrecisionMap {
  public:
    /** Precision of knob @p key; unmentioned knobs default to double. */
    runtime::Precision get(const std::string& key) const;

    /** As above for a pre-interned key (the hot path). */
    runtime::Precision get(model::BindKeyId key) const;

    /** Set knob @p key to @p p. */
    void set(const std::string& key, runtime::Precision p);

    /** As above for a pre-interned key. */
    void set(model::BindKeyId key, runtime::Precision p);

    /** True when every knob is left at double precision. */
    bool allDouble() const;

    /** Name the benchmark/model this map configures (used to attribute
     *  undeclared-key warnings to the offending prepare()). */
    void setOwner(std::string owner) { owner_ = std::move(owner); }

    /** The owning benchmark/model name; empty when unattributed. */
    const std::string& owner() const { return owner_; }

  private:
    std::vector<std::pair<model::BindKeyId, runtime::Precision>>
        entries_;
    std::string owner_;
};

/** The canonical output of one benchmark run. */
struct RunOutput {
    std::vector<double> values; ///< widened output vector (may hold NaN)
};

/**
 * An immutable input array with cached per-precision runtime views.
 *
 * Benchmarks keep their seeded source data in CachedInput members; the
 * double and float views are materialized lazily, at most once per
 * process, under a once-flag (thread-safe, so concurrent `--search-jobs`
 * evaluators can share one benchmark instance). The cached conversion
 * is Buffer::fromDoubles, bit-identical to a fresh per-run conversion.
 *
 * Assign the source values before the first view() call; the views
 * are immutable afterwards.
 */
class CachedInput {
  public:
    CachedInput() = default;
    explicit CachedInput(std::vector<double> values)
        : values_(std::move(values))
    {
    }

    CachedInput&
    operator=(std::vector<double> values)
    {
        values_ = std::move(values);
        return *this;
    }

    /** Element count of the source array. */
    std::size_t size() const { return values_.size(); }

    /** The source values (always double). */
    std::span<const double> doubles() const { return values_; }

    /** Cached immutable view at @p p, converted on first use. */
    const runtime::Buffer& view(runtime::Precision p) const;

    /** Freshly converted owning copy — the seed's per-run cost,
     *  kept for the uncached prepare path (see PrepareOptions). */
    runtime::Buffer convert(runtime::Precision p) const;

  private:
    std::vector<double> values_;
    mutable std::once_flag onceBf16_;
    mutable std::once_flag once16_;
    mutable std::once_flag once32_;
    mutable std::once_flag once64_;
    mutable runtime::Buffer bf16_;
    mutable runtime::Buffer f16_;
    mutable runtime::Buffer f32_;
    mutable runtime::Buffer f64_;
};

/** Options for Benchmark::prepare(). */
struct PrepareOptions {
    /**
     * Bind inputs from the benchmark's input cache (the default,
     * convert-once-per-process). When false every input is freshly
     * converted into plan-owned storage — the per-run conversion cost
     * of the pre-split pipeline, kept so bench_eval_pipeline can A/B
     * the two honestly and tests can prove them bit-identical.
     */
    bool reuseInputCache = true;
};

/**
 * A resolved, executable configuration of one benchmark.
 *
 * prepare() fills two dense slot-indexed tables: knob precisions
 * (one per tunable knob, resolved from the PrecisionMap once) and
 * input views (borrowed from the input cache, or plan-owned fresh
 * conversions). A plan stays valid for the benchmark's lifetime and
 * may be executed any number of times, from any thread.
 */
class RunPlan {
  public:
    /** Record the resolved precision of knob slot @p slot. */
    void setKnob(std::size_t slot, runtime::Precision p);

    /** Resolved precision of knob slot @p slot. */
    runtime::Precision knob(std::size_t slot) const;

    /** Bind slot @p slot to an externally owned (cached) view. */
    void bindInput(std::size_t slot, const runtime::Buffer& view);

    /** Bind slot @p slot to a freshly converted plan-owned buffer. */
    void adoptInput(std::size_t slot, runtime::Buffer owned);

    /** The input bound to slot @p slot. */
    const runtime::Buffer& input(std::size_t slot) const;

  private:
    friend class Benchmark;

    std::vector<runtime::Precision> knobs_;
    std::vector<const runtime::Buffer*> inputs_;
    // Deque: growing must not move buffers inputs_ points into.
    std::deque<runtime::Buffer> owned_;

    // Fallback for benchmarks that only override run().
    PrecisionMap fallbackMap_;
    bool fallbackOnly_ = false;
};

/** Bind @p input at @p slot: cached view or fresh copy per options. */
inline void
bindInput(RunPlan& plan, std::size_t slot, const CachedInput& input,
          runtime::Precision p, const PrepareOptions& options)
{
    if (options.reuseInputCache)
        plan.bindInput(slot, input.view(p));
    else
        plan.adoptInput(slot, input.convert(p));
}

/**
 * As above, additionally logging the input's observed min/max under
 * the bind key @p key when the profiler's value-range recording is
 * active (one branch when it is not). The recorded ranges feed the
 * typeforge absint soundness cross-check: every statically derived
 * interval must contain what the benchmark actually binds.
 */
inline void
bindInput(RunPlan& plan, std::size_t slot, const CachedInput& input,
          runtime::Precision p, const PrepareOptions& options,
          model::BindKeyId key)
{
    if (runtime::Profiler::instance().rangeRecording()) {
        std::span<const double> values = input.doubles();
        if (!values.empty()) {
            double lo = values[0];
            double hi = values[0];
            for (double v : values) {
                lo = v < lo ? v : lo;
                hi = v > hi ? v : hi;
            }
            runtime::Profiler::instance().recordRange(
                model::bindKeyName(key), lo, hi, values.size());
        }
    }
    bindInput(plan, slot, input, p, options);
}

/**
 * Knobs of the iterative-refinement wrapper (`--refine=on`).
 *
 * Refinement follows the HPL-MxP recipe: execute at the configured
 * (low) precision, compute the residual against the exact double
 * inputs, solve a correction at the low precision, and apply the
 * correction in double. Iteration stops when the residual max-norm
 * reaches targetResidual, and *diverges* (throws RefineDiverged) when
 * the residual turns non-finite or grows on consecutive iterations —
 * a diverging configuration must surface as RuntimeFail, not a hang.
 */
struct RefineControl {
    double targetResidual = 1e-10; ///< stop when max|r| falls below
    std::size_t maxIterations = 30; ///< correction-step cap
};

/** Thrown by executeRefined() when refinement diverges. */
class RefineDiverged : public std::runtime_error {
  public:
    explicit RefineDiverged(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** One benchmark program of the suite. */
class Benchmark {
  public:
    virtual ~Benchmark() = default;

    /** Suite-unique name, e.g. "hydro-1d" or "lavamd". */
    virtual std::string name() const = 0;

    /** One-line description (Table I / Section III-B). */
    virtual std::string description() const = 0;

    /** True for kernels, false for proxy applications. */
    virtual bool isKernel() const = 0;

    /** Default quality metric name ("MAE", or "MCR" for K-means). */
    virtual std::string qualityMetric() const { return "MAE"; }

    /** The program model consumed by the Typeforge analysis. */
    virtual const model::ProgramModel& programModel() const = 0;

    /**
     * Execute the workload under @p precisions.
     *
     * The default composes prepare() and execute() against a private
     * workspace; a benchmark must override either this or the
     * prepare()/execute() pair.
     */
    virtual RunOutput run(const PrecisionMap& precisions) const;

    /**
     * Resolve @p precisions into an executable plan: one knob lookup
     * and one input bind per slot. The default wraps the map for
     * run()-only benchmarks.
     */
    virtual RunPlan prepare(const PrecisionMap& precisions,
                            const PrepareOptions& options = {}) const;

    /**
     * Run the timed kernel region of @p plan against @p workspace.
     * Deterministic: the same plan yields bit-identical output no
     * matter what the workspace was previously used for.
     */
    virtual RunOutput execute(const RunPlan& plan,
                              runtime::RunWorkspace& workspace) const;

    /**
     * True when the benchmark exposes a residual hook — i.e. its
     * workload is a solve whose answer can be corrected by
     * executeRefined(). Benchmarks without a hook run unrefined even
     * under `--refine=on`.
     */
    virtual bool supportsRefinement() const { return false; }

    /**
     * Execute with iterative-refinement recovery: low-precision
     * solve, double-precision residual, low-precision correction.
     * Throws RefineDiverged when the iteration diverges. Only called
     * when supportsRefinement() is true.
     */
    virtual RunOutput
    executeRefined(const RunPlan& plan,
                   runtime::RunWorkspace& workspace,
                   const RefineControl& control) const;
};

} // namespace hpcmixp::benchmarks

#endif // HPCMIXP_BENCHMARKS_BENCHMARK_H_
