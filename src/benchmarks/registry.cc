#include "benchmarks/registry.h"

#include "benchmarks/apps/apps.h"
#include "benchmarks/kernels/kernels.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace hpcmixp::benchmarks {

BenchmarkRegistry::BenchmarkRegistry()
{
    using enum BenchmarkKind;
    // Kernels (Table I order).
    add("banded-lin-eq", Kernel, makeBandedLinEq);
    add("diff-predictor", Kernel, makeDiffPredictor);
    add("eos", Kernel, makeEos);
    add("gen-lin-recur", Kernel, makeGenLinRecur);
    add("hydro-1d", Kernel, makeHydro1d);
    add("iccg", Kernel, makeIccg);
    add("innerprod", Kernel, makeInnerprod);
    add("int-predict", Kernel, makeIntPredict);
    add("planckian", Kernel, makePlanckian);
    add("tridiag", Kernel, makeTridiag);

    // Applications (Section III-B order).
    add("blackscholes", Application, makeBlackscholes);
    add("cfd", Application, makeCfd);
    add("hotspot", Application, makeHotspot);
    add("hpccg", Application, makeHpccg);
    add("kmeans", Application, makeKmeans);
    add("lavamd", Application, makeLavaMd);
    add("srad", Application, makeSrad);
}

BenchmarkRegistry&
BenchmarkRegistry::instance()
{
    static BenchmarkRegistry registry;
    return registry;
}

void
BenchmarkRegistry::add(const std::string& name, BenchmarkKind kind,
                       Factory factory)
{
    if (has(name))
        support::fatal(support::strCat("benchmark '", name,
                                       "' already registered"));
    entries_.push_back({name, kind, std::move(factory)});
}

std::unique_ptr<Benchmark>
BenchmarkRegistry::create(const std::string& name) const
{
    for (const auto& entry : entries_)
        if (entry.name == name)
            return entry.factory();
    support::fatal(support::strCat("unknown benchmark '", name, "'"));
}

bool
BenchmarkRegistry::has(const std::string& name) const
{
    for (const auto& entry : entries_)
        if (entry.name == name)
            return true;
    return false;
}

std::vector<std::string>
BenchmarkRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& entry : entries_)
        out.push_back(entry.name);
    return out;
}

std::vector<std::string>
BenchmarkRegistry::kernelNames() const
{
    std::vector<std::string> out;
    for (const auto& entry : entries_)
        if (entry.kind == BenchmarkKind::Kernel)
            out.push_back(entry.name);
    return out;
}

std::vector<std::string>
BenchmarkRegistry::applicationNames() const
{
    std::vector<std::string> out;
    for (const auto& entry : entries_)
        if (entry.kind == BenchmarkKind::Application)
            out.push_back(entry.name);
    return out;
}

} // namespace hpcmixp::benchmarks
