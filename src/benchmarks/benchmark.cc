#include "benchmarks/benchmark.h"

#include "support/logging.h"

namespace hpcmixp::benchmarks {

runtime::Precision
PrecisionMap::get(const std::string& key) const
{
    return get(model::internBindKey(key));
}

runtime::Precision
PrecisionMap::get(model::BindKeyId key) const
{
    for (const auto& [id, p] : entries_)
        if (id == key)
            return p;
    // Unmentioned knobs default to double — but a key no model ever
    // declares can never be set by the tuner, so querying it is almost
    // certainly a typo'd knob name. Warn once per key. (The gate on
    // anyBindKeyDeclared keeps model-free unit tests silent.)
    if (model::anyBindKeyDeclared() && !model::bindKeyDeclared(key))
        model::warnUndeclaredBindKey(key, owner_);
    return runtime::Precision::Float64;
}

void
PrecisionMap::set(const std::string& key, runtime::Precision p)
{
    set(model::internBindKey(key), p);
}

void
PrecisionMap::set(model::BindKeyId key, runtime::Precision p)
{
    for (auto& [id, existing] : entries_) {
        if (id == key) {
            existing = p;
            return;
        }
    }
    entries_.emplace_back(key, p);
}

bool
PrecisionMap::allDouble() const
{
    for (const auto& [id, p] : entries_)
        if (p != runtime::Precision::Float64)
            return false;
    return true;
}

const runtime::Buffer&
CachedInput::view(runtime::Precision p) const
{
    switch (p) {
    case runtime::Precision::BFloat16:
        std::call_once(onceBf16_, [&] {
            bf16_ = runtime::Buffer::fromDoubles(values_, p);
        });
        return bf16_;
    case runtime::Precision::Float16:
        std::call_once(once16_, [&] {
            f16_ = runtime::Buffer::fromDoubles(values_, p);
        });
        return f16_;
    case runtime::Precision::Float32:
        std::call_once(once32_, [&] {
            f32_ = runtime::Buffer::fromDoubles(values_, p);
        });
        return f32_;
    case runtime::Precision::Float64:
        break;
    }
    std::call_once(once64_, [&] {
        f64_ = runtime::Buffer::fromDoubles(
            values_, runtime::Precision::Float64);
    });
    return f64_;
}

runtime::Buffer
CachedInput::convert(runtime::Precision p) const
{
    return runtime::Buffer::fromDoubles(values_, p);
}

void
RunPlan::setKnob(std::size_t slot, runtime::Precision p)
{
    if (knobs_.size() <= slot)
        knobs_.resize(slot + 1, runtime::Precision::Float64);
    knobs_[slot] = p;
}

runtime::Precision
RunPlan::knob(std::size_t slot) const
{
    HPCMIXP_ASSERT(slot < knobs_.size(), "run plan knob slot unset");
    return knobs_[slot];
}

void
RunPlan::bindInput(std::size_t slot, const runtime::Buffer& view)
{
    if (inputs_.size() <= slot)
        inputs_.resize(slot + 1, nullptr);
    inputs_[slot] = &view;
}

void
RunPlan::adoptInput(std::size_t slot, runtime::Buffer owned)
{
    owned_.push_back(std::move(owned));
    bindInput(slot, owned_.back());
}

const runtime::Buffer&
RunPlan::input(std::size_t slot) const
{
    HPCMIXP_ASSERT(slot < inputs_.size() && inputs_[slot] != nullptr,
                   "run plan input slot unbound");
    return *inputs_[slot];
}

RunOutput
Benchmark::run(const PrecisionMap& precisions) const
{
    runtime::RunWorkspace workspace;
    return execute(prepare(precisions), workspace);
}

RunPlan
Benchmark::prepare(const PrecisionMap& precisions,
                   const PrepareOptions&) const
{
    RunPlan plan;
    plan.fallbackMap_ = precisions;
    plan.fallbackOnly_ = true;
    return plan;
}

RunOutput
Benchmark::execute(const RunPlan& plan, runtime::RunWorkspace&) const
{
    // A run()-only benchmark reaches here through the tuner's
    // prepare/execute path; forward to its run(). (A benchmark class
    // overriding neither run() nor this pair is a bug — it would
    // recurse through the two defaults.)
    HPCMIXP_ASSERT(plan.fallbackOnly_,
                   "plan-aware benchmark is missing execute()");
    return run(plan.fallbackMap_);
}

RunOutput
Benchmark::executeRefined(const RunPlan&, runtime::RunWorkspace&,
                          const RefineControl&) const
{
    support::fatal(
        support::strCat("benchmark '", name(),
                        "' does not expose a residual hook; "
                        "supportsRefinement() must gate this call"));
}

} // namespace hpcmixp::benchmarks
