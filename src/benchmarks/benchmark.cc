#include "benchmarks/benchmark.h"

namespace hpcmixp::benchmarks {

runtime::Precision
PrecisionMap::get(const std::string& key) const
{
    for (const auto& [name, p] : entries_)
        if (name == key)
            return p;
    return runtime::Precision::Float64;
}

void
PrecisionMap::set(const std::string& key, runtime::Precision p)
{
    for (auto& [name, existing] : entries_) {
        if (name == key) {
            existing = p;
            return;
        }
    }
    entries_.emplace_back(key, p);
}

bool
PrecisionMap::allDouble() const
{
    for (const auto& [name, p] : entries_)
        if (p != runtime::Precision::Float64)
            return false;
    return true;
}

} // namespace hpcmixp::benchmarks
