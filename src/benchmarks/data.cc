#include "benchmarks/data.h"

#include <algorithm>
#include <cmath>

#include "support/env.h"

namespace hpcmixp::benchmarks {

std::vector<double>
uniformVector(std::uint64_t seed, std::size_t n, double lo, double hi)
{
    support::Pcg32 rng(seed);
    std::vector<double> out(n);
    support::fillUniform(rng, out, lo, hi);
    return out;
}

double
sizeScale()
{
    return support::quickMode() ? 0.25 : 1.0;
}

std::size_t
scaled(std::size_t n, std::size_t minimum)
{
    auto s = static_cast<std::size_t>(
        std::llround(static_cast<double>(n) * sizeScale()));
    return std::max(s, minimum);
}

} // namespace hpcmixp::benchmarks
