/**
 * @file
 * hpccg — Mantevo preconditioned conjugate-gradient proxy app.
 *
 * Solves A x = b with unpreconditioned CG where A is the 27-point
 * stencil sparse matrix HPCCG generates. All CG vectors (x, b, r, p,
 * Ap) flow through the ddot / waxpby / sparsemv helpers as pointer
 * arguments, so they land in one type-dependence cluster ("vectors");
 * the matrix values are their own cluster ("matrix"), and the ddot
 * accumulation precision is a scalar knob ("scalars").
 */

#include <cmath>

#include "benchmarks/apps/apps.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"
#include "runtime/profiler.h"

namespace hpcmixp::benchmarks {

namespace {

/** 27-point stencil CG region. */
template <class TV, class TM, class TS>
void
hpccgRegion(std::span<const TM> values,
            std::span<const std::int32_t> cols,
            std::span<const std::int32_t> rowStart, std::span<TV> x,
            std::span<const TV> b, std::span<TV> r, std::span<TV> p,
            std::span<TV> ap, std::size_t iterations)
{
    runtime::ScopedRegion profileRegion("hpccg/cg_solve");
    std::size_t n = x.size();

    auto ddot = [&](std::span<const TV> u, std::span<const TV> v) {
        TS acc{};
        for (std::size_t i = 0; i < n; ++i)
            acc += static_cast<TS>(u[i] * v[i]);
        return acc;
    };
    auto sparsemv = [&](std::span<const TV> v, std::span<TV> out) {
        for (std::size_t i = 0; i < n; ++i) {
            TS sum{};
            for (std::int32_t k = rowStart[i]; k < rowStart[i + 1];
                 ++k)
                sum += static_cast<TS>(
                    values[static_cast<std::size_t>(k)] *
                    v[static_cast<std::size_t>(cols[
                        static_cast<std::size_t>(k)])]);
            out[i] = static_cast<TV>(sum);
        }
    };

    // x = 0; r = b; p = r.
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = TV{};
        r[i] = b[i];
        p[i] = b[i];
    }
    TS rtrans = ddot(r, r);

    for (std::size_t it = 0; it < iterations; ++it) {
        sparsemv(p, ap);
        TS pap = ddot(p, ap);
        if (pap == TS{})
            break;
        TS alpha = rtrans / pap;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += static_cast<TV>(alpha) * p[i];
            r[i] -= static_cast<TV>(alpha) * ap[i];
        }
        TS oldRtrans = rtrans;
        rtrans = ddot(r, r);
        TS beta = rtrans / oldRtrans;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = r[i] + static_cast<TV>(beta) * p[i];
    }
}

class Hpccg final : public Benchmark {
  public:
    Hpccg() : model_("hpccg")
    {
        nx_ = scaled(24, 8);
        iterations_ = 20;
        buildMatrix();
        buildModel();
    }

    std::string name() const override { return "hpccg"; }

    std::string
    description() const override
    {
        return "Conjugate-gradient PDE solver on a 27-point stencil";
    }

    bool isKernel() const override { return false; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        runtime::Precision pv = pm.get(keyVectors_);
        plan.setKnob(kX, pv);
        plan.setKnob(kScalars, pm.get(keyScalars_));
        bindInput(plan, kValues, valueData_, pm.get(keyMatrix_),
                  options, keyMatrix_);
        bindInput(plan, kB, bData_, pv, options, keyVectors_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        std::size_t n = nx_ * nx_ * nx_;
        const Buffer& values = plan.input(kValues);
        const Buffer& b = plan.input(kB);
        runtime::Precision pv = plan.knob(kX);
        Buffer& x = ws.zeroed(kX, n, pv);
        Buffer& r = ws.zeroed(kR, n, pv);
        Buffer& p = ws.zeroed(kP, n, pv);
        Buffer& ap = ws.zeroed(kAp, n, pv);

        runtime::dispatch3(
            x.precision(), values.precision(), plan.knob(kScalars),
            [&](auto tv, auto tm, auto ts) {
                using TV = typename decltype(tv)::type;
                using TM = typename decltype(tm)::type;
                using TS = typename decltype(ts)::type;
                hpccgRegion<TV, TM, TS>(
                    std::span<const TM>(values.as<TM>()), colData_,
                    rowStartData_, x.as<TV>(),
                    std::span<const TV>(b.as<TV>()), r.as<TV>(),
                    p.as<TV>(), ap.as<TV>(), iterations_);
            });
        return {x.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kX, kR, kP, kAp, kValues, kB, kScalars };

    void
    buildMatrix()
    {
        // 27-point stencil on an nx^3 grid: diagonal 26.something to
        // keep A diagonally dominant (SPD), off-diagonals -1.
        std::size_t n = nx_ * nx_ * nx_;
        auto idx = [&](std::size_t i, std::size_t j, std::size_t k) {
            return (k * nx_ + j) * nx_ + i;
        };
        std::vector<double> valueData;
        rowStartData_.assign(1, 0);
        for (std::size_t k = 0; k < nx_; ++k) {
            for (std::size_t j = 0; j < nx_; ++j) {
                for (std::size_t i = 0; i < nx_; ++i) {
                    for (int dk = -1; dk <= 1; ++dk) {
                        for (int dj = -1; dj <= 1; ++dj) {
                            for (int di = -1; di <= 1; ++di) {
                                std::ptrdiff_t ii =
                                    static_cast<std::ptrdiff_t>(i) + di;
                                std::ptrdiff_t jj =
                                    static_cast<std::ptrdiff_t>(j) + dj;
                                std::ptrdiff_t kk =
                                    static_cast<std::ptrdiff_t>(k) + dk;
                                if (ii < 0 || jj < 0 || kk < 0 ||
                                    ii >= static_cast<std::ptrdiff_t>(
                                              nx_) ||
                                    jj >= static_cast<std::ptrdiff_t>(
                                              nx_) ||
                                    kk >= static_cast<std::ptrdiff_t>(
                                              nx_))
                                    continue;
                                bool diag =
                                    di == 0 && dj == 0 && dk == 0;
                                valueData.push_back(diag ? 27.0
                                                         : -1.0);
                                colData_.push_back(
                                    static_cast<std::int32_t>(idx(
                                        static_cast<std::size_t>(ii),
                                        static_cast<std::size_t>(jj),
                                        static_cast<std::size_t>(
                                            kk))));
                            }
                        }
                    }
                    rowStartData_.push_back(static_cast<std::int32_t>(
                        valueData.size()));
                }
            }
        }
        // Right-hand side for the known solution x* = 0.01 everywhere.
        std::vector<double> bData(n, 0.0);
        for (std::size_t row = 0; row < n; ++row) {
            double sum = 0.0;
            for (std::int32_t c = rowStartData_[row];
                 c < rowStartData_[row + 1]; ++c)
                sum += valueData[static_cast<std::size_t>(c)];
            bData[row] = 0.01 * sum;
        }
        valueData_ = std::move(valueData);
        bData_ = std::move(bData);
    }

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("hpccg.c");

        FunctionId fmain = model_.addFunction(m, "main");
        VarId vx = model_.addVariable(fmain, "x", realPointer(),
                                      "vectors");
        VarId vb = model_.addVariable(fmain, "b", realPointer(),
                                      "vectors");
        VarId vr = model_.addVariable(fmain, "r", realPointer(),
                                      "vectors");
        VarId vp = model_.addVariable(fmain, "p", realPointer(),
                                      "vectors");
        VarId vap = model_.addVariable(fmain, "Ap", realPointer(),
                                       "vectors");
        VarId va = model_.addVariable(fmain, "A_values", realPointer(),
                                      "matrix");

        FunctionId fddot = model_.addFunction(m, "ddot");
        VarId du = model_.addParameter(fddot, "x", realPointer(),
                                       "vectors");
        VarId dv = model_.addParameter(fddot, "y", realPointer(),
                                       "vectors");
        VarId dres = model_.addVariable(fddot, "result", realScalar(),
                                        "scalars");
        model_.addCallBind(vr, du);
        model_.addCallBind(vp, du);
        model_.addCallBind(vr, dv);
        model_.addCallBind(vap, dv);

        FunctionId fwaxpby = model_.addFunction(m, "waxpby");
        VarId wx = model_.addParameter(fwaxpby, "x", realPointer(),
                                       "vectors");
        VarId wy = model_.addParameter(fwaxpby, "y", realPointer(),
                                       "vectors");
        VarId ww = model_.addParameter(fwaxpby, "w", realPointer(),
                                       "vectors");
        model_.addParameter(fwaxpby, "alpha", realScalar());
        model_.addParameter(fwaxpby, "beta", realScalar());
        // waxpby is called as w=p (p = r + beta*p), w=x (x += alpha*p)
        // and with b on the y side (r = b - Ax), binding every CG
        // vector into one cluster.
        model_.addCallBind(vx, wx);
        model_.addCallBind(vr, wy);
        model_.addCallBind(vb, wy);
        model_.addCallBind(vp, ww);
        model_.addCallBind(vx, ww);

        FunctionId fspmv = model_.addFunction(m, "sparsemv");
        VarId sa = model_.addParameter(fspmv, "values", realPointer(),
                                       "matrix");
        VarId sv = model_.addParameter(fspmv, "x", realPointer(),
                                       "vectors");
        VarId sy = model_.addParameter(fspmv, "y", realPointer(),
                                       "vectors");
        VarId ssum = model_.addVariable(fspmv, "sum", realScalar(),
                                        "scalars");
        model_.addCallBind(va, sa);
        model_.addCallBind(vp, sv);
        model_.addCallBind(vap, sy);

        FunctionId fcg = model_.addFunction(m, "HPCCG");
        VarId crt = model_.addVariable(fcg, "rtrans", realScalar(),
                                       "scalars");
        VarId calpha = model_.addVariable(fcg, "alpha", realScalar());
        VarId cbeta = model_.addVariable(fcg, "beta", realScalar());
        model_.addReturn(crt, dres);
        model_.addReturn(calpha, dres);
        model_.addReturn(cbeta, dres);
        // The ddot accumulator feeds both rtrans and sparsemv sums:
        // scalar flow, so they stay separate clusters unless the user
        // adds an explicit constraint. We keep rtrans/result/sum in
        // one knob through same-type constraints (shared typedef in
        // the original source).
        model_.addSameType(crt, dres);
        model_.addSameType(ssum, dres);

        // Dataflow facts for mixp-lint: the ddot/sparsemv accumulators
        // and rtrans are loop-carried reductions, and rtrans (via its
        // oldRtrans copy) divides in the alpha/beta updates.
        model_.markFact(dres, DataflowFact::Accumulator);
        model_.markFact(dres, DataflowFact::LoopCarried);
        model_.markFact(ssum, DataflowFact::Accumulator);
        model_.markFact(ssum, DataflowFact::LoopCarried);
        model_.markFact(crt, DataflowFact::Accumulator);
        model_.markFact(crt, DataflowFact::LoopCarried);
        model_.markFact(crt, DataflowFact::Divisor);
        model_.markDataflowAnalyzed();
    }

    model::ProgramModel model_;
    std::size_t nx_;
    std::size_t iterations_;
    CachedInput valueData_;
    std::vector<std::int32_t> colData_;
    std::vector<std::int32_t> rowStartData_;
    CachedInput bData_;
    model::BindKeyId keyVectors_ = model::internBindKey("vectors");
    model::BindKeyId keyMatrix_ = model::internBindKey("matrix");
    model::BindKeyId keyScalars_ = model::internBindKey("scalars");
};

} // namespace

std::unique_ptr<Benchmark>
makeHpccg()
{
    return std::make_unique<Hpccg>();
}

} // namespace hpcmixp::benchmarks
