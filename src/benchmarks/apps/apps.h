#ifndef HPCMIXP_BENCHMARKS_APPS_APPS_H_
#define HPCMIXP_BENCHMARKS_APPS_APPS_H_

/**
 * @file
 * Factories for the seven proxy-application benchmarks (Section III-B).
 *
 * The applications come from the PARSEC / Rodinia / Mantevo lineages
 * the paper selects from. Their original input files are replaced by
 * seeded synthetic generators that preserve the numeric ranges and
 * access patterns driving both speedup and accuracy (DESIGN.md §2).
 */

#include <memory>

#include "benchmarks/benchmark.h"

namespace hpcmixp::benchmarks {

std::unique_ptr<Benchmark> makeBlackscholes(); ///< PARSEC option pricing
std::unique_ptr<Benchmark> makeCfd();          ///< Rodinia euler3d
std::unique_ptr<Benchmark> makeHotspot();      ///< Rodinia thermal sim
std::unique_ptr<Benchmark> makeHpccg();        ///< Mantevo CG solver
std::unique_ptr<Benchmark> makeKmeans();       ///< Rodinia clustering
std::unique_ptr<Benchmark> makeLavaMd();       ///< Rodinia particle MD
std::unique_ptr<Benchmark> makeSrad();         ///< Rodinia despeckling

} // namespace hpcmixp::benchmarks

#endif // HPCMIXP_BENCHMARKS_APPS_APPS_H_
