/**
 * @file
 * cfd — Rodinia euler3d: unstructured-grid finite-volume solver for
 * the three-dimensional Euler equations (compressible flow).
 *
 * The original fvcorr mesh file is replaced by a synthetic structured
 * torus expressed in unstructured form (per-cell neighbour lists and
 * face normals), preserving the indirect access pattern. Conserved
 * variables per cell: density, momentum (x,y,z), energy density.
 *
 * Nearly every function takes the solution arrays as pointer
 * parameters, so clustering collapses the many variables into a few
 * clusters — the strong-clustering outlier of Table II.
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <tuple>

#include "benchmarks/apps/apps.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"
#include "runtime/profiler.h"

namespace hpcmixp::benchmarks {

namespace {

constexpr std::size_t kVars = 5;   // rho, mx, my, mz, e
constexpr std::size_t kFaces = 6;  // structured torus: 6 neighbours
constexpr double kGamma = 1.4;
constexpr double kCfl = 0.2;

template <class T>
T
pressureOf(T rho, T mx, T my, T mz, T e)
{
    T gm1 = T(kGamma) - T{1};
    return gm1 * (e - T(0.5) * (mx * mx + my * my + mz * mz) / rho);
}

/** step_factors[i] = CFL / (|u| + c) per cell. */
template <class TV, class TS>
void
computeStepFactor(std::span<const TV> variables, std::span<TS> stepFactors,
                  std::size_t cells)
{
    runtime::ScopedRegion profileRegion("cfd/compute_step_factor");
    for (std::size_t i = 0; i < cells; ++i) {
        const TV* v = &variables[i * kVars];
        TV rho = v[0];
        TV speedSqd = (v[1] * v[1] + v[2] * v[2] + v[3] * v[3]) /
                      (rho * rho);
        TV pressure = pressureOf(rho, v[1], v[2], v[3], v[4]);
        TV soundSpeed = std::sqrt(TV(kGamma) * pressure / rho);
        stepFactors[i] = static_cast<TS>(
            TV(kCfl) / (std::sqrt(speedSqd) + soundSpeed));
    }
}

/** Accumulate upwinded face fluxes into `fluxes`. */
template <class TV, class TN, class TF>
void
computeFlux(std::span<const TV> variables,
            std::span<const std::int32_t> neighbors,
            std::span<const TN> normals, std::span<TF> fluxes,
            std::size_t cells)
{
    runtime::ScopedRegion profileRegion("cfd/compute_flux");
    for (std::size_t i = 0; i < cells; ++i) {
        const TV* vi = &variables[i * kVars];
        TV rhoI = vi[0];
        TV pI = pressureOf(rhoI, vi[1], vi[2], vi[3], vi[4]);
        TF acc[kVars] = {};

        for (std::size_t f = 0; f < kFaces; ++f) {
            auto nb = static_cast<std::size_t>(
                neighbors[i * kFaces + f]);
            const TV* vj = &variables[nb * kVars];
            const TN* nrm = &normals[(i * kFaces + f) * 3];
            TV rhoJ = vj[0];
            TV pJ = pressureOf(rhoJ, vj[1], vj[2], vj[3], vj[4]);

            // Central flux with scalar dissipation (Rusanov-like).
            TV uxI = vi[1] / rhoI, uyI = vi[2] / rhoI,
               uzI = vi[3] / rhoI;
            TV uxJ = vj[1] / rhoJ, uyJ = vj[2] / rhoJ,
               uzJ = vj[3] / rhoJ;
            TV unI = uxI * TV(nrm[0]) + uyI * TV(nrm[1]) +
                     uzI * TV(nrm[2]);
            TV unJ = uxJ * TV(nrm[0]) + uyJ * TV(nrm[1]) +
                     uzJ * TV(nrm[2]);
            TV cI = std::sqrt(TV(kGamma) * pI / rhoI);
            TV cJ = std::sqrt(TV(kGamma) * pJ / rhoJ);
            TV smax = std::max(std::abs(unI) + cI,
                               std::abs(unJ) + cJ);

            TV fluxRho = TV(0.5) * (rhoI * unI + rhoJ * unJ) -
                         TV(0.5) * smax * (rhoJ - rhoI);
            TV fluxMx = TV(0.5) * (vi[1] * unI + vj[1] * unJ +
                                   (pI + pJ) * TV(nrm[0])) -
                        TV(0.5) * smax * (vj[1] - vi[1]);
            TV fluxMy = TV(0.5) * (vi[2] * unI + vj[2] * unJ +
                                   (pI + pJ) * TV(nrm[1])) -
                        TV(0.5) * smax * (vj[2] - vi[2]);
            TV fluxMz = TV(0.5) * (vi[3] * unI + vj[3] * unJ +
                                   (pI + pJ) * TV(nrm[2])) -
                        TV(0.5) * smax * (vj[3] - vi[3]);
            TV fluxE = TV(0.5) * ((vi[4] + pI) * unI +
                                  (vj[4] + pJ) * unJ) -
                       TV(0.5) * smax * (vj[4] - vi[4]);

            acc[0] += static_cast<TF>(fluxRho);
            acc[1] += static_cast<TF>(fluxMx);
            acc[2] += static_cast<TF>(fluxMy);
            acc[3] += static_cast<TF>(fluxMz);
            acc[4] += static_cast<TF>(fluxE);
        }
        for (std::size_t k = 0; k < kVars; ++k)
            fluxes[i * kVars + k] = acc[k];
    }
}

/** variables = old_variables - dt * fluxes. */
template <class TV, class TF, class TS>
void
timeStep(std::span<TV> variables, std::span<const TV> oldVariables,
         std::span<const TF> fluxes, std::span<const TS> stepFactors,
         std::size_t cells)
{
    runtime::ScopedRegion profileRegion("cfd/time_step");
    for (std::size_t i = 0; i < cells; ++i) {
        TV dt = static_cast<TV>(stepFactors[i]);
        for (std::size_t k = 0; k < kVars; ++k)
            variables[i * kVars + k] =
                oldVariables[i * kVars + k] -
                dt * static_cast<TV>(fluxes[i * kVars + k]);
    }
}

class Cfd final : public Benchmark {
  public:
    Cfd() : model_("cfd")
    {
        nx_ = scaled(20, 8);
        cells_ = nx_ * nx_ * nx_;
        iterations_ = 3;
        buildMesh();
        buildInitialState();
        buildModel();
    }

    std::string name() const override { return "cfd"; }

    std::string
    description() const override
    {
        return "Unstructured-grid 3D Euler solver for compressible flow";
    }

    bool isKernel() const override { return false; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        plan.setKnob(kVariables, pm.get(keyVariables_));
        plan.setKnob(kFluxes, pm.get(keyFluxes_));
        plan.setKnob(kStepFactors, pm.get(keyStepFactors_));
        bindInput(plan, kInitState, initState_,
                  pm.get(keyVariables_), options, keyVariables_);
        bindInput(plan, kNormals, normalData_, pm.get(keyNormals_),
                  options, keyNormals_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        // The solver advances the state in place; start from a copy of
        // the converted initial state.
        Buffer& variables = ws.copyOf(kVariables, plan.input(kInitState));
        Buffer& oldVariables = ws.zeroed(kOldVariables,
                                         variables.size(),
                                         plan.knob(kVariables));
        Buffer& fluxes = ws.zeroed(kFluxes, variables.size(),
                                   plan.knob(kFluxes));
        Buffer& stepFactors =
            ws.zeroed(kStepFactors, cells_, plan.knob(kStepFactors));
        const Buffer& normals = plan.input(kNormals);

        runtime::dispatch4(
            variables.precision(), fluxes.precision(),
            stepFactors.precision(), normals.precision(),
            [&](auto tv, auto tf, auto ts, auto tn) {
                using TV = typename decltype(tv)::type;
                using TF = typename decltype(tf)::type;
                using TS = typename decltype(ts)::type;
                using TN = typename decltype(tn)::type;
                auto vars = variables.as<TV>();
                auto oldVars = oldVariables.as<TV>();
                for (std::size_t it = 0; it < iterations_; ++it) {
                    std::copy(vars.begin(), vars.end(),
                              oldVars.begin());
                    computeStepFactor<TV, TS>(
                        std::span<const TV>(vars),
                        stepFactors.as<TS>(), cells_);
                    // Three-step Runge-Kutta as in euler3d.
                    for (int rk = 0; rk < 3; ++rk) {
                        computeFlux<TV, TN, TF>(
                            std::span<const TV>(vars), neighborData_,
                            std::span<const TN>(normals.as<TN>()),
                            fluxes.as<TF>(), cells_);
                        timeStep<TV, TF, TS>(
                            vars, std::span<const TV>(oldVars),
                            std::span<const TF>(fluxes.as<TF>()),
                            std::span<const TS>(stepFactors.as<TS>()),
                            cells_);
                    }
                }
            });
        return {variables.toDoubles()};
    }

  private:
    enum Slot : std::size_t {
        kVariables,
        kOldVariables,
        kFluxes,
        kStepFactors,
        kInitState,
        kNormals
    };

    void
    buildMesh()
    {
        // Structured periodic torus in unstructured representation.
        auto idx = [&](std::size_t i, std::size_t j, std::size_t k) {
            return (k * nx_ + j) * nx_ + i;
        };
        neighborData_.resize(cells_ * kFaces);
        std::vector<double> normalData(cells_ * kFaces * 3);
        const double faceArea = 0.05;
        for (std::size_t k = 0; k < nx_; ++k) {
            for (std::size_t j = 0; j < nx_; ++j) {
                for (std::size_t i = 0; i < nx_; ++i) {
                    std::size_t c = idx(i, j, k);
                    const std::array<std::array<int, 3>, kFaces> dirs{
                        {{+1, 0, 0},
                         {-1, 0, 0},
                         {0, +1, 0},
                         {0, -1, 0},
                         {0, 0, +1},
                         {0, 0, -1}}};
                    for (std::size_t f = 0; f < kFaces; ++f) {
                        auto [di, dj, dk] = std::tuple{
                            dirs[f][0], dirs[f][1], dirs[f][2]};
                        std::size_t ni = (i + nx_ +
                                          static_cast<std::size_t>(
                                              di + 1) - 1) % nx_;
                        std::size_t nj = (j + nx_ +
                                          static_cast<std::size_t>(
                                              dj + 1) - 1) % nx_;
                        std::size_t nk = (k + nx_ +
                                          static_cast<std::size_t>(
                                              dk + 1) - 1) % nx_;
                        neighborData_[c * kFaces + f] =
                            static_cast<std::int32_t>(idx(ni, nj, nk));
                        normalData[(c * kFaces + f) * 3 + 0] =
                            faceArea * dirs[f][0];
                        normalData[(c * kFaces + f) * 3 + 1] =
                            faceArea * dirs[f][1];
                        normalData[(c * kFaces + f) * 3 + 2] =
                            faceArea * dirs[f][2];
                    }
                }
            }
        }
        normalData_ = std::move(normalData);
    }

    void
    buildInitialState()
    {
        // Smooth density/energy perturbation around a uniform flow.
        std::vector<double> initState(cells_ * kVars);
        for (std::size_t c = 0; c < cells_; ++c) {
            double phase =
                2.0 * M_PI * static_cast<double>(c % nx_) /
                static_cast<double>(nx_);
            double rho = 1.0 + 0.05 * std::sin(phase);
            double ux = 0.3;
            double uy = 0.02 * std::cos(phase);
            double uz = 0.0;
            double pressure = 1.0;
            initState[c * kVars + 0] = rho;
            initState[c * kVars + 1] = rho * ux;
            initState[c * kVars + 2] = rho * uy;
            initState[c * kVars + 3] = rho * uz;
            initState[c * kVars + 4] =
                pressure / (kGamma - 1.0) +
                0.5 * rho * (ux * ux + uy * uy + uz * uz);
        }
        initState_ = std::move(initState);
    }

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("euler3d.cpp");

        FunctionId fmain = model_.addFunction(m, "main");
        VarId vars = model_.addVariable(fmain, "variables",
                                        realPointer(), "variables");
        VarId oldVars = model_.addVariable(fmain, "old_variables",
                                           realPointer(), "variables");
        VarId fluxes = model_.addVariable(fmain, "fluxes",
                                          realPointer(), "fluxes");
        VarId steps = model_.addVariable(fmain, "step_factors",
                                         realPointer(), "step_factors");
        VarId normals = model_.addVariable(fmain, "normals",
                                           realPointer(), "normals");

        FunctionId fcopy = model_.addFunction(m, "copy");
        VarId cDst = model_.addParameter(fcopy, "dst", realPointer(),
                                         "variables");
        VarId cSrc = model_.addParameter(fcopy, "src", realPointer(),
                                         "variables");
        model_.addCallBind(oldVars, cDst);
        model_.addCallBind(vars, cSrc);
        // Inside copy() the two pointers alias (dst = src walks), so
        // their base types unify.
        model_.addAssign(cDst, cSrc);

        FunctionId fsf = model_.addFunction(m, "compute_step_factor");
        VarId sfVars = model_.addParameter(fsf, "variables",
                                           realPointer(), "variables");
        VarId sfOut = model_.addParameter(fsf, "step_factors",
                                          realPointer(),
                                          "step_factors");
        model_.addCallBind(vars, sfVars);
        model_.addCallBind(steps, sfOut);
        const char* sfLocals[] = {"density", "speed_sqd", "pressure",
                                  "speed_of_sound"};
        for (const char* l : sfLocals)
            model_.addVariable(fsf, l, realScalar());

        FunctionId fflux = model_.addFunction(m, "compute_flux");
        VarId flVars = model_.addParameter(fflux, "variables",
                                           realPointer(), "variables");
        VarId flNorm = model_.addParameter(fflux, "normals",
                                           realPointer(), "normals");
        VarId flOut = model_.addParameter(fflux, "fluxes",
                                          realPointer(), "fluxes");
        model_.addCallBind(vars, flVars);
        model_.addCallBind(normals, flNorm);
        model_.addCallBind(fluxes, flOut);
        const char* flLocals[] = {
            "smax",       "factor",     "density_i", "density_nb",
            "pressure_i", "pressure_nb", "velocity_i", "velocity_nb",
            "flux_density", "flux_energy", "de_p"};
        for (const char* l : flLocals)
            model_.addVariable(fflux, l, realScalar());

        FunctionId fts = model_.addFunction(m, "time_step");
        VarId tsVars = model_.addParameter(fts, "variables",
                                           realPointer(), "variables");
        VarId tsOld = model_.addParameter(fts, "old_variables",
                                          realPointer(), "variables");
        VarId tsFlux = model_.addParameter(fts, "fluxes",
                                           realPointer(), "fluxes");
        VarId tsSteps = model_.addParameter(fts, "step_factors",
                                            realPointer(),
                                            "step_factors");
        model_.addCallBind(vars, tsVars);
        model_.addCallBind(oldVars, tsOld);
        model_.addCallBind(fluxes, tsFlux);
        model_.addCallBind(steps, tsSteps);
        model_.addVariable(fts, "factor", realScalar());
    }

    model::ProgramModel model_;
    std::size_t nx_;
    std::size_t cells_;
    std::size_t iterations_;
    std::vector<std::int32_t> neighborData_;
    CachedInput normalData_;
    CachedInput initState_;
    model::BindKeyId keyVariables_ = model::internBindKey("variables");
    model::BindKeyId keyFluxes_ = model::internBindKey("fluxes");
    model::BindKeyId keyStepFactors_ =
        model::internBindKey("step_factors");
    model::BindKeyId keyNormals_ = model::internBindKey("normals");
};

} // namespace

std::unique_ptr<Benchmark>
makeCfd()
{
    return std::make_unique<Cfd>();
}

} // namespace hpcmixp::benchmarks
