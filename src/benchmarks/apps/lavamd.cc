/**
 * @file
 * lavamd — Rodinia particle potential / relocation.
 *
 * Particles live in a 3D lattice of boxes; each particle interacts
 * with every particle in its home box and the 26 surrounding boxes
 * (periodic wrap), within an exponential cutoff kernel. The
 * interaction inner loop re-reads neighbour particle data many times,
 * so the precision of the particle arrays governs both the SIMD width
 * and the resident working-set size — the source of the largest
 * speedup in Table IV.
 */

#include <cmath>

#include "benchmarks/apps/apps.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"
#include "runtime/profiler.h"
#include "support/env.h"

namespace hpcmixp::benchmarks {

namespace {

constexpr double kAlpha = 0.5;

/**
 * Vectorizable exponential: 10th-order Taylor-Horner expansion,
 * adequate on the bounded argument range of the interaction kernel
 * (|u2| <= ~1.5). Using an inline polynomial instead of the libm call
 * lets the interaction loop auto-vectorize, which is where single
 * precision earns its doubled SIMD width (DESIGN.md, Section 2).
 * Both precisions evaluate the same polynomial, so accuracy loss is
 * pure rounding.
 */
template <class T>
inline T
polyExp(T x)
{
    T r = T(1.0 / 3628800.0);
    r = r * x + T(1.0 / 362880.0);
    r = r * x + T(1.0 / 40320.0);
    r = r * x + T(1.0 / 5040.0);
    r = r * x + T(1.0 / 720.0);
    r = r * x + T(1.0 / 120.0);
    r = r * x + T(1.0 / 24.0);
    r = r * x + T(1.0 / 6.0);
    r = r * x + T(0.5);
    r = r * x + T(1);
    r = r * x + T(1);
    return r;
}

/**
 * Force/potential region. rv holds particle state in SoA layout —
 * x[total], y[total], z[total], v[total] — as vectorized MD kernels
 * store it; qv the charges; fv the accumulated output, also SoA
 * (potential, fx, fy, fz). The SoA layout plus the inline polyExp let
 * the neighbour loop auto-vectorize.
 */
template <class TR, class TQ, class TF>
void
lavamdRegion(std::span<const TR> rv, std::span<const TQ> qv,
             std::span<TF> fv, std::size_t boxes1d,
             std::size_t particlesPerBox)
{
    runtime::ScopedRegion profileRegion("lavamd/kernel_cpu");
    const TR a2 = TR(2.0 * kAlpha * kAlpha);
    std::size_t boxes = boxes1d * boxes1d * boxes1d;
    std::size_t total = boxes * particlesPerBox;
    const TR* xs = rv.data();
    const TR* ys = xs + total;
    const TR* zs = ys + total;
    const TR* ws = zs + total;
    TF* fV = fv.data();
    TF* fX = fV + total;
    TF* fY = fX + total;
    TF* fZ = fY + total;

    auto boxIndex = [&](std::size_t bx, std::size_t by,
                        std::size_t bz) {
        return (bz * boxes1d + by) * boxes1d + bx;
    };

    for (std::size_t home = 0; home < boxes; ++home) {
        std::size_t hx = home % boxes1d;
        std::size_t hy = (home / boxes1d) % boxes1d;
        std::size_t hz = home / (boxes1d * boxes1d);
        std::size_t homeBase = home * particlesPerBox;

        for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    std::size_t nx =
                        (hx + boxes1d + static_cast<std::size_t>(
                                            dx + 1) - 1) % boxes1d;
                    std::size_t ny =
                        (hy + boxes1d + static_cast<std::size_t>(
                                            dy + 1) - 1) % boxes1d;
                    std::size_t nz =
                        (hz + boxes1d + static_cast<std::size_t>(
                                            dz + 1) - 1) % boxes1d;
                    std::size_t nbrBase =
                        boxIndex(nx, ny, nz) * particlesPerBox;

                    for (std::size_t i = 0; i < particlesPerBox; ++i) {
                        std::size_t hi = homeBase + i;
                        TR xi = xs[hi], yi = ys[hi], zi = zs[hi];
                        TR wi = ws[hi];
                        TF accV{}, accX{}, accY{}, accZ{};
                        for (std::size_t j = 0; j < particlesPerBox;
                             ++j) {
                            std::size_t nj = nbrBase + j;
                            TR dot = xi * xs[nj] + yi * ys[nj] +
                                     zi * zs[nj];
                            TR r2 = wi + ws[nj] - dot;
                            TR u2 = a2 * r2;
                            TR vij = polyExp(-u2);
                            TR fs = TR{2} * vij;
                            TQ q = qv[nj];
                            accV += static_cast<TF>(q * vij);
                            accX += static_cast<TF>(
                                q * fs * (xi - xs[nj]));
                            accY += static_cast<TF>(
                                q * fs * (yi - ys[nj]));
                            accZ += static_cast<TF>(
                                q * fs * (zi - zs[nj]));
                        }
                        fV[hi] += accV;
                        fX[hi] += accX;
                        fY[hi] += accY;
                        fZ[hi] += accZ;
                    }
                }
            }
        }
    }
}

class LavaMd final : public Benchmark {
  public:
    LavaMd() : model_("lavamd")
    {
        // 128 particles per box keeps the vectorized neighbour loop's
        // trip count a large multiple of the widest SIMD lane count;
        // quick mode shrinks the box lattice and box population.
        boxes1d_ = support::quickMode() ? 2 : 3;
        particlesPerBox_ = support::quickMode() ? 64 : 128;
        std::size_t particles =
            boxes1d_ * boxes1d_ * boxes1d_ * particlesPerBox_;
        rvData_ = uniformVector(0xA4001, particles * 4, 0.1, 1.0);
        qvData_ = uniformVector(0xA4002, particles, 0.1, 1.0);
        buildModel();
    }

    std::string name() const override { return "lavamd"; }

    std::string
    description() const override
    {
        return "Particle potential and relocation within a 3D box space";
    }

    bool isKernel() const override { return false; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        plan.setKnob(kFv, pm.get(keyFv_));
        bindInput(plan, kRv, rvData_, pm.get(keyRv_), options, keyRv_);
        bindInput(plan, kQv, qvData_, pm.get(keyQv_), options, keyQv_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        const Buffer& rv = plan.input(kRv);
        const Buffer& qv = plan.input(kQv);
        Buffer& fv = ws.zeroed(kFv, rvData_.size(), plan.knob(kFv));

        runtime::dispatch3(
            rv.precision(), qv.precision(), fv.precision(),
            [&](auto tr, auto tq, auto tf) {
                using TR = typename decltype(tr)::type;
                using TQ = typename decltype(tq)::type;
                using TF = typename decltype(tf)::type;
                lavamdRegion<TR, TQ, TF>(
                    std::span<const TR>(rv.as<TR>()),
                    std::span<const TQ>(qv.as<TQ>()), fv.as<TF>(),
                    boxes1d_, particlesPerBox_);
            });
        return {fv.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kRv, kQv, kFv };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("lavamd.c");

        FunctionId fmain = model_.addFunction(m, "main");
        VarId rv = model_.addVariable(fmain, "rv", realPointer(), "rv");
        VarId qv = model_.addVariable(fmain, "qv", realPointer(), "qv");
        VarId fv = model_.addVariable(fmain, "fv", realPointer(), "fv");

        FunctionId fkernel = model_.addFunction(m, "kernel_cpu");
        VarId pRv = model_.addParameter(fkernel, "rv", realPointer(),
                                        "rv");
        VarId pQv = model_.addParameter(fkernel, "qv", realPointer(),
                                        "qv");
        VarId pFv = model_.addParameter(fkernel, "fv", realPointer(),
                                        "fv");
        model_.addCallBind(rv, pRv);
        model_.addCallBind(qv, pQv);
        model_.addCallBind(fv, pFv);

        const char* locals[] = {"r2", "u2", "vij", "fs",
                                "dx", "dy", "dz", "a2"};
        for (const char* l : locals)
            model_.addVariable(fkernel, l, realScalar());
    }

    model::ProgramModel model_;
    std::size_t boxes1d_;
    std::size_t particlesPerBox_;
    CachedInput rvData_;
    CachedInput qvData_;
    model::BindKeyId keyRv_ = model::internBindKey("rv");
    model::BindKeyId keyQv_ = model::internBindKey("qv");
    model::BindKeyId keyFv_ = model::internBindKey("fv");
};

} // namespace

std::unique_ptr<Benchmark>
makeLavaMd()
{
    return std::make_unique<LavaMd>();
}

} // namespace hpcmixp::benchmarks
