/**
 * @file
 * kmeans — Rodinia clustering.
 *
 * Lloyd's algorithm over well-separated synthetic Gaussian blobs. The
 * output is the discrete cluster assignment, verified with the
 * Misclassification Rate (MCR): with separated blobs, full single
 * precision changes no assignment (MCR = 0) yet buys little speed —
 * the "no-win" extreme of Table IV.
 */

#include <algorithm>
#include <cmath>
#include <limits>

#include "benchmarks/apps/apps.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"

namespace hpcmixp::benchmarks {

namespace {

template <class TF, class TC>
void
kmeansRegion(std::span<const TF> features, std::span<TC> centroids,
             std::vector<int>& membership, std::size_t points,
             std::size_t dims, std::size_t k, std::size_t iterations)
{
    std::vector<TC> sums(k * dims);
    std::vector<int> counts(k);

    for (std::size_t it = 0; it < iterations; ++it) {
        // Assignment step.
        for (std::size_t p = 0; p < points; ++p) {
            const TF* fp = &features[p * dims];
            TC bestDist = std::numeric_limits<TC>::max();
            int best = 0;
            for (std::size_t c = 0; c < k; ++c) {
                const TC* cp = &centroids[c * dims];
                TC dist{};
                for (std::size_t d = 0; d < dims; ++d) {
                    TC diff = static_cast<TC>(fp[d]) - cp[d];
                    dist += diff * diff;
                }
                if (dist < bestDist) {
                    bestDist = dist;
                    best = static_cast<int>(c);
                }
            }
            membership[p] = best;
        }
        // Update step.
        std::fill(sums.begin(), sums.end(), TC{});
        std::fill(counts.begin(), counts.end(), 0);
        for (std::size_t p = 0; p < points; ++p) {
            int c = membership[p];
            ++counts[static_cast<std::size_t>(c)];
            for (std::size_t d = 0; d < dims; ++d)
                sums[static_cast<std::size_t>(c) * dims + d] +=
                    static_cast<TC>(features[p * dims + d]);
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            for (std::size_t d = 0; d < dims; ++d)
                centroids[c * dims + d] =
                    sums[c * dims + d] / static_cast<TC>(counts[c]);
        }
    }
}

class Kmeans final : public Benchmark {
  public:
    Kmeans() : model_("kmeans")
    {
        points_ = scaled(8000);
        dims_ = 8;
        k_ = 5;
        iterations_ = 10;
        generateBlobs();
        buildModel();
    }

    std::string name() const override { return "kmeans"; }

    std::string
    description() const override
    {
        return "K-means clustering of data objects into K sub-clusters";
    }

    bool isKernel() const override { return false; }

    std::string qualityMetric() const override { return "MCR"; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        bindInput(plan, kFeatures, featureData_, pm.get(keyFeatures_),
                  options, keyFeatures_);
        bindInput(plan, kCentroids, centroidData_,
                  pm.get(keyClusters_), options, keyClusters_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        const Buffer& features = plan.input(kFeatures);
        // Lloyd's algorithm updates the centroids in place.
        Buffer& centroids = ws.copyOf(kCentroids,
                                      plan.input(kCentroids));
        std::vector<int>& membership = ws.ints(kMembership, points_);

        runtime::dispatch2(
            features.precision(), centroids.precision(),
            [&](auto tf, auto tc) {
                using TF = typename decltype(tf)::type;
                using TC = typename decltype(tc)::type;
                kmeansRegion<TF, TC>(
                    std::span<const TF>(features.as<TF>()),
                    centroids.as<TC>(), membership, points_, dims_,
                    k_, iterations_);
            });

        RunOutput out;
        out.values.reserve(points_);
        for (int m : membership)
            out.values.push_back(static_cast<double>(m));
        return out;
    }

  private:
    enum Slot : std::size_t { kFeatures, kCentroids, kMembership };

    void
    generateBlobs()
    {
        support::Pcg32 rng(0xA3001);
        // Blob centers spread far apart relative to the unit spread.
        std::vector<double> centers(k_ * dims_);
        for (auto& c : centers)
            c = rng.uniform(-10.0, 10.0);
        std::vector<double> featureData(points_ * dims_);
        for (std::size_t p = 0; p < points_; ++p) {
            std::size_t blob = rng.nextBounded(
                static_cast<std::uint32_t>(k_));
            for (std::size_t d = 0; d < dims_; ++d)
                featureData[p * dims_ + d] =
                    centers[blob * dims_ + d] + 0.3 * rng.normal();
        }
        // Initial centroids: the first K points (Rodinia's choice).
        centroidData_ = std::vector<double>(
            featureData.begin(),
            featureData.begin() +
                static_cast<std::ptrdiff_t>(k_ * dims_));
        featureData_ = std::move(featureData);
    }

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("kmeans.c");

        FunctionId fmain = model_.addFunction(m, "main");
        VarId feat = model_.addVariable(fmain, "features",
                                        realPointer(2), "features");
        VarId clus = model_.addVariable(fmain, "clusters",
                                        realPointer(2), "clusters");

        FunctionId fcluster = model_.addFunction(m, "kmeans_clustering");
        VarId pFeat = model_.addParameter(fcluster, "feature",
                                          realPointer(2), "features");
        VarId pClus = model_.addParameter(fcluster, "clusters",
                                          realPointer(2), "clusters");
        model_.addCallBind(feat, pFeat);
        model_.addCallBind(clus, pClus);
        VarId newCenters = model_.addVariable(
            fcluster, "new_centers", realPointer(2), "clusters");
        model_.addAssign(pClus, newCenters);

        FunctionId fdist = model_.addFunction(m, "euclid_dist_2");
        VarId pPt = model_.addParameter(fdist, "pt", realPointer(),
                                        "features");
        VarId pCenter = model_.addParameter(fdist, "pt2", realPointer(),
                                            "clusters");
        model_.addCallBind(pFeat, pPt);
        model_.addCallBind(pClus, pCenter);
        model_.addVariable(fdist, "ans", realScalar());
    }

    model::ProgramModel model_;
    std::size_t points_;
    std::size_t dims_;
    std::size_t k_;
    std::size_t iterations_;
    CachedInput featureData_;
    CachedInput centroidData_;
    model::BindKeyId keyFeatures_ = model::internBindKey("features");
    model::BindKeyId keyClusters_ = model::internBindKey("clusters");
};

} // namespace

std::unique_ptr<Benchmark>
makeKmeans()
{
    return std::make_unique<Kmeans>();
}

} // namespace hpcmixp::benchmarks
