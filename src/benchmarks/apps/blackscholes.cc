/**
 * @file
 * blackscholes — PARSEC European option pricing.
 *
 * Prices a portfolio of options with the closed-form Black-Scholes
 * formula (a PDE solution). The program is scalar-heavy: the formula
 * and the CNDF helper declare dozens of scalar locals, each its own
 * type-dependence cluster — the weak-clustering outlier of Table II.
 *
 * Execution knobs:
 *  - one knob per input array (sptprice, strike, rate, volatility,
 *    otime): storage precision; arrays are converted to the formula's
 *    working precision at the region boundary (a genuine cast pass);
 *  - "locals": the working precision of the pricing formula;
 *  - "cndf": the working precision of the CNDF polynomial;
 *  - "prices": storage precision of the output array.
 * Remaining scalar clusters are cold (searchable, no runtime effect),
 * mirroring the many irrelevant scalars of the real program.
 */

#include <cmath>

#include "benchmarks/apps/apps.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"

namespace hpcmixp::benchmarks {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

/**
 * Cumulative normal distribution (Abramowitz-Stegun polynomial).
 *
 * The polynomial coefficients are deliberately left as raw double
 * literals: Typeforge does not transform literals (paper Section
 * IV-B), so even in a lowered configuration these products evaluate
 * in binary64 with casts at every use — the effect the paper reports
 * capping the achievable speedup of literal-heavy code.
 */
template <class T>
T
cndf(T x)
{
    bool negative = x < T{0};
    if (negative)
        x = -x;
    auto k = 1.0 / (1.0 + 0.2316419 * x);
    auto poly =
        k * (0.319381530 +
             k * (-0.356563782 +
                  k * (1.781477937 +
                       k * (-1.821255978 + k * 1.330274429))));
    auto nPrime = kInvSqrt2Pi * std::exp(-0.5 * x * x);
    auto result = 1.0 - nPrime * poly;
    return static_cast<T>(negative ? 1.0 - result : result);
}

/**
 * Pricing region: inputs already converted to the working type TS,
 * CNDF evaluated at TC with casts at the call boundary.
 */
template <class TS, class TC>
void
priceRegion(std::span<const TS> sptprice, std::span<const TS> strike,
            std::span<const TS> rate, std::span<const TS> volatility,
            std::span<const TS> otime, const std::vector<int>& otype,
            std::span<TS> prices)
{
    std::size_t n = prices.size();
    for (std::size_t i = 0; i < n; ++i) {
        TS s = sptprice[i];
        TS k = strike[i];
        TS r = rate[i];
        TS v = volatility[i];
        TS t = otime[i];

        TS sqrtT = std::sqrt(t);
        TS logTerm = std::log(s / k);
        // 0.5 is an untransformed literal (see cndf above): the whole
        // d1/d2 chain promotes to binary64 in lowered configurations,
        // exactly as in the PARSEC source the paper analyzed.
        auto powerTerm = 0.5 * v * v;
        auto d1 = (logTerm + (r + powerTerm) * t) / (v * sqrtT);
        auto d2 = d1 - v * sqrtT;

        TS nD1 = static_cast<TS>(cndf<TC>(static_cast<TC>(d1)));
        TS nD2 = static_cast<TS>(cndf<TC>(static_cast<TC>(d2)));
        TS futureValue = k * std::exp(-r * t);
        if (otype[i] == 0) {
            prices[i] = s * nD1 - futureValue * nD2;
        } else {
            prices[i] = futureValue * (TS{1} - nD2) -
                        s * (TS{1} - nD1);
        }
    }
}

/**
 * Convert an mp::Buffer into a working array of type T held in a
 * workspace slot — the region boundary's genuine cast pass, minus the
 * per-run allocation.
 */
template <class T>
std::span<T>
toWorking(runtime::RunWorkspace& ws, std::size_t slot,
          const runtime::Buffer& buffer)
{
    runtime::Buffer& work =
        ws.zeroed(slot, buffer.size(), runtime::precisionOf<T>());
    auto out = work.as<T>();
    runtime::dispatch1(buffer.precision(), [&](auto tag) {
        using Src = typename decltype(tag)::type;
        auto view = buffer.as<Src>();
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = static_cast<T>(view[i]);
    });
    return out;
}

class Blackscholes final : public Benchmark {
  public:
    Blackscholes() : model_("blackscholes")
    {
        n_ = scaled(100000);
        sptData_ = uniformVector(0xA1001, n_, 0.8, 1.2);
        strikeData_ = uniformVector(0xA1002, n_, 0.8, 1.2);
        rateData_ = uniformVector(0xA1003, n_, 0.02, 0.1);
        volData_ = uniformVector(0xA1004, n_, 0.1, 0.6);
        timeData_ = uniformVector(0xA1005, n_, 0.25, 2.0);
        support::Pcg32 rng(0xA1006);
        otype_.resize(n_);
        for (auto& t : otype_)
            t = rng.chance(0.5) ? 1 : 0;
        buildModel();
    }

    std::string name() const override { return "blackscholes"; }

    std::string
    description() const override
    {
        return "European option pricing via the Black-Scholes PDE";
    }

    bool isKernel() const override { return false; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        plan.setKnob(kLocals, pm.get(keyLocals_));
        plan.setKnob(kCndf, pm.get(keyCndf_));
        plan.setKnob(kPrices, pm.get(keyPrices_));
        bindInput(plan, kSpt, sptData_, pm.get(keySpt_), options, keySpt_);
        bindInput(plan, kStrike, strikeData_, pm.get(keyStrike_),
                  options, keyStrike_);
        bindInput(plan, kRate, rateData_, pm.get(keyRate_), options, keyRate_);
        bindInput(plan, kVol, volData_, pm.get(keyVol_), options, keyVol_);
        bindInput(plan, kOtime, timeData_, pm.get(keyOtime_), options, keyOtime_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        Buffer& prices = ws.zeroed(kPrices, n_, plan.knob(kPrices));

        runtime::dispatch2(
            plan.knob(kLocals), plan.knob(kCndf),
            [&](auto ts, auto tc) {
                using TS = typename decltype(ts)::type;
                using TC = typename decltype(tc)::type;
                auto s = toWorking<TS>(ws, kSpt, plan.input(kSpt));
                auto k =
                    toWorking<TS>(ws, kStrike, plan.input(kStrike));
                auto r = toWorking<TS>(ws, kRate, plan.input(kRate));
                auto v = toWorking<TS>(ws, kVol, plan.input(kVol));
                auto t =
                    toWorking<TS>(ws, kOtime, plan.input(kOtime));
                Buffer& outBuf = ws.zeroed(kWorkOut, n_,
                                           runtime::precisionOf<TS>());
                auto out = outBuf.as<TS>();
                priceRegion<TS, TC>(s, k, r, v, t, otype_, out);
                for (std::size_t i = 0; i < n_; ++i)
                    prices.storeDouble(i,
                                       static_cast<double>(out[i]));
            });
        return {prices.toDoubles()};
    }

  private:
    enum Slot : std::size_t {
        kSpt,
        kStrike,
        kRate,
        kVol,
        kOtime,
        kPrices,
        kLocals,
        kCndf,
        kWorkOut
    };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("blackscholes.c");

        FunctionId fmain = model_.addFunction(m, "main");
        const char* arrays[] = {"sptprice", "strike", "rate",
                                "volatility", "otime", "prices"};
        for (const char* a : arrays)
            model_.addVariable(fmain, a, realPointer(), a);

        // BlkSchlsEqEuroNoDiv: scalar parameters (passed by value) and
        // a forest of scalar locals -> singleton clusters galore.
        FunctionId fbs =
            model_.addFunction(m, "BlkSchlsEqEuroNoDiv");
        const char* bsParams[] = {"sptprice_p", "strike_p", "rate_p",
                                  "volatility_p", "time_p"};
        for (const char* p : bsParams)
            model_.addParameter(fbs, p, realScalar());
        const char* bsLocals[] = {
            "xStockPrice", "xStrikePrice", "xRiskFreeRate",
            "xVolatility", "xTime",        "xSqrtTime",
            "logValues",   "xLogTerm",     "xPowerTerm",
            "xDen",        "d1",           "d2",
            "futureValueX", "nofXd1",      "nofXd2",
            "negNofXd1",   "negNofXd2",    "optionPrice"};
        for (const char* l : bsLocals)
            model_.addVariable(fbs, l, realScalar());
        // xD1 is the representative cluster driving the formula's
        // working precision.
        model_.addVariable(fbs, "xD1", realScalar(), "locals");

        // CNDF: one scalar parameter and polynomial locals.
        FunctionId fcndf = model_.addFunction(m, "CNDF");
        model_.addParameter(fcndf, "inputX", realScalar());
        const char* cndfLocals[] = {
            "outputX", "xInput",   "xNPrimeofX", "expValues",
            "xK2",     "xK2_2",    "xK2_3",      "xK2_4",
            "xK2_5",   "xLocal_1", "xLocal_2",   "xLocal_3"};
        for (const char* l : cndfLocals)
            model_.addVariable(fcndf, l, realScalar());
        model_.addVariable(fcndf, "xLocal", realScalar(), "cndf");
    }

    model::ProgramModel model_;
    std::size_t n_;
    CachedInput sptData_;
    CachedInput strikeData_;
    CachedInput rateData_;
    CachedInput volData_;
    CachedInput timeData_;
    std::vector<int> otype_;
    model::BindKeyId keySpt_ = model::internBindKey("sptprice");
    model::BindKeyId keyStrike_ = model::internBindKey("strike");
    model::BindKeyId keyRate_ = model::internBindKey("rate");
    model::BindKeyId keyVol_ = model::internBindKey("volatility");
    model::BindKeyId keyOtime_ = model::internBindKey("otime");
    model::BindKeyId keyPrices_ = model::internBindKey("prices");
    model::BindKeyId keyLocals_ = model::internBindKey("locals");
    model::BindKeyId keyCndf_ = model::internBindKey("cndf");
};

} // namespace

std::unique_ptr<Benchmark>
makeBlackscholes()
{
    return std::make_unique<Blackscholes>();
}

} // namespace hpcmixp::benchmarks
