/**
 * @file
 * hotspot — Rodinia thermal simulation.
 *
 * Iteratively solves the heat-dissipation differential equations on a
 * processor floor plan: each grid cell's temperature is updated from
 * its four neighbours, its own power draw, and the ambient sink. The
 * iteration is dissipative, so single-precision rounding does not
 * accumulate — the reason the paper finds Hotspot tunable even at the
 * strictest 1e-8 quality threshold.
 *
 * The two ping-pong temperature grids are swapped by pointer, so they
 * sit in one type-dependence cluster ("temp"); the power map is its
 * own cluster ("power").
 */

#include <algorithm>
#include <cmath>
#include <utility>

#include "benchmarks/apps/apps.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"
#include "runtime/profiler.h"

namespace hpcmixp::benchmarks {

namespace {

// Thermal RC constants (normalized units).
constexpr double kStepDivCap = 0.5;
constexpr double kInvRx = 0.2;
constexpr double kInvRy = 0.2;
constexpr double kInvRz = 0.1;
constexpr double kAmbient = 0.0;

template <class TT, class TP>
void
hotspotRegion(std::span<TT> temp, std::span<TT> result,
              std::span<const TP> power, std::size_t rows,
              std::size_t cols, std::size_t iterations)
{
    runtime::ScopedRegion profileRegion("hotspot/compute_tran_temp");
    // Pin the thermal constants to the grid's working type so the
    // whole update runs natively at TT (double literals would silently
    // promote every operation back to binary64).
    const TT stepDivCap = TT(kStepDivCap);
    const TT invRx = TT(kInvRx);
    const TT invRy = TT(kInvRy);
    const TT invRz = TT(kInvRz);
    const TT ambient = TT(kAmbient);

    TT* src = temp.data();
    TT* dst = result.data();
    for (std::size_t it = 0; it < iterations; ++it) {
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                std::size_t idx = r * cols + c;
                TT center = src[idx];
                TT north = r > 0 ? src[idx - cols] : center;
                TT south = r + 1 < rows ? src[idx + cols] : center;
                TT west = c > 0 ? src[idx - 1] : center;
                TT east = c + 1 < cols ? src[idx + 1] : center;

                TT delta = static_cast<TT>(
                    stepDivCap *
                    (power[idx] +
                     (south + north - TT{2} * center) * invRy +
                     (east + west - TT{2} * center) * invRx +
                     (ambient - center) * invRz));
                dst[idx] = center + delta;
            }
        }
        std::swap(src, dst);
    }
    // Make sure the final state is in `temp` regardless of parity.
    if (iterations % 2 != 0)
        std::copy(result.begin(), result.end(), temp.begin());
}

class Hotspot final : public Benchmark {
  public:
    Hotspot() : model_("hotspot")
    {
        rows_ = scaled(256, 32);
        cols_ = rows_;
        iterations_ = 60;
        tempData_ = uniformVector(0xA2001, rows_ * cols_, 0.0, 0.1);
        powerData_ = uniformVector(0xA2002, rows_ * cols_, 0.0, 0.02);
        buildModel();
    }

    std::string name() const override { return "hotspot"; }

    std::string
    description() const override
    {
        return "Processor thermal simulation on a floor plan";
    }

    bool isKernel() const override { return false; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions& options) const override
    {
        RunPlan plan;
        bindInput(plan, kTemp, tempData_, pm.get(keyTemp_), options, keyTemp_);
        bindInput(plan, kPower, powerData_, pm.get(keyPower_),
                  options, keyPower_);
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        // The ping-pong iteration mutates temp; work on a copy.
        Buffer& temp = ws.copyOf(kTemp, plan.input(kTemp));
        Buffer& result =
            ws.zeroed(kResult, temp.size(), temp.precision());
        const Buffer& power = plan.input(kPower);

        runtime::dispatch2(
            temp.precision(), power.precision(), [&](auto tt, auto tp) {
                using TT = typename decltype(tt)::type;
                using TP = typename decltype(tp)::type;
                hotspotRegion<TT, TP>(temp.as<TT>(), result.as<TT>(),
                                      power.as<TP>(), rows_, cols_,
                                      iterations_);
            });
        return {temp.toDoubles()};
    }

  private:
    enum Slot : std::size_t { kTemp, kResult, kPower };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("hotspot.c");

        FunctionId fmain = model_.addFunction(m, "main");
        VarId temp = model_.addVariable(fmain, "temp", realPointer(),
                                        "temp");
        VarId result = model_.addVariable(fmain, "result",
                                          realPointer(), "temp");
        VarId power = model_.addVariable(fmain, "power", realPointer(),
                                         "power");
        // Ping-pong swap: temp and result exchange pointers.
        model_.addAssign(temp, result);

        FunctionId fcompute =
            model_.addFunction(m, "compute_tran_temp");
        VarId pTemp = model_.addParameter(fcompute, "temp_src",
                                          realPointer(), "temp");
        VarId pResult = model_.addParameter(fcompute, "temp_dst",
                                            realPointer(), "temp");
        VarId pPower = model_.addParameter(fcompute, "power",
                                           realPointer(), "power");
        model_.addCallBind(temp, pTemp);
        model_.addCallBind(result, pResult);
        model_.addCallBind(power, pPower);

        const char* locals[] = {"delta", "tc", "tn", "ts", "te", "tw"};
        for (const char* l : locals)
            model_.addVariable(fcompute, l, realScalar());
        model_.addVariable(fcompute, "step_div_cap", realScalar());
    }

    model::ProgramModel model_;
    std::size_t rows_;
    std::size_t cols_;
    std::size_t iterations_;
    CachedInput tempData_;
    CachedInput powerData_;
    model::BindKeyId keyTemp_ = model::internBindKey("temp");
    model::BindKeyId keyPower_ = model::internBindKey("power");
};

} // namespace

std::unique_ptr<Benchmark>
makeHotspot()
{
    return std::make_unique<Hotspot>();
}

} // namespace hpcmixp::benchmarks
