/**
 * @file
 * srad — Speckle Reducing Anisotropic Diffusion (Rodinia).
 *
 * PDE-based despeckling for ultrasonic/radar imaging. Following the
 * Rodinia code, the raw image is exponentiated before diffusion and
 * log-compressed on output. The synthetic input spans a large dynamic
 * range, so the exponentiated image exceeds FLT_MAX: running the image
 * cluster in single precision overflows to infinity and the diffusion
 * update turns the output into NaN — reproducing the paper's
 * "quality completely destroyed" entry for SRAD in Table IV.
 */

#include <algorithm>
#include <cmath>

#include "benchmarks/apps/apps.h"
#include "benchmarks/data.h"
#include "runtime/buffer.h"
#include "runtime/dispatch.h"

namespace hpcmixp::benchmarks {

namespace {

constexpr double kLambda = 0.25;

template <class TJ, class TG, class TC>
void
sradRegion(std::span<TJ> image, std::span<TG> dN, std::span<TG> dS,
           std::span<TG> dW, std::span<TG> dE, std::span<TC> coef,
           std::size_t rows, std::size_t cols, std::size_t iterations)
{
    const TJ lambda = TJ(kLambda);
    std::size_t n = rows * cols;

    for (std::size_t it = 0; it < iterations; ++it) {
        // ROI statistics -> diffusion threshold q0sqr.
        TJ sum{}, sum2{};
        for (std::size_t i = 0; i < n; ++i) {
            sum += image[i];
            sum2 += image[i] * image[i];
        }
        TJ mean = sum / TJ(n);
        TJ var = sum2 / TJ(n) - mean * mean;
        TJ q0sqr = var / (mean * mean);

        // Gradients and diffusion coefficient.
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                std::size_t idx = r * cols + c;
                TJ jc = image[idx];
                TG n_ = static_cast<TG>(
                    (r > 0 ? image[idx - cols] : jc) - jc);
                TG s_ = static_cast<TG>(
                    (r + 1 < rows ? image[idx + cols] : jc) - jc);
                TG w_ = static_cast<TG>(
                    (c > 0 ? image[idx - 1] : jc) - jc);
                TG e_ = static_cast<TG>(
                    (c + 1 < cols ? image[idx + 1] : jc) - jc);
                dN[idx] = n_;
                dS[idx] = s_;
                dW[idx] = w_;
                dE[idx] = e_;

                TG g2 = (n_ * n_ + s_ * s_ + w_ * w_ + e_ * e_) /
                        static_cast<TG>(jc * jc);
                TG l = (n_ + s_ + w_ + e_) / static_cast<TG>(jc);
                TG num = TG(0.5) * g2 - TG(1.0 / 16.0) * (l * l);
                TG den = TG{1} + TG(0.25) * l;
                TG qsqr = num / (den * den);
                TG qd = (qsqr - static_cast<TG>(q0sqr)) /
                        (static_cast<TG>(q0sqr) *
                         (TG{1} + static_cast<TG>(q0sqr)));
                TC cval = static_cast<TC>(TG{1} / (TG{1} + qd));
                coef[idx] = std::clamp(cval, TC{0}, TC{1});
            }
        }

        // Divergence update.
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                std::size_t idx = r * cols + c;
                TC cC = coef[idx];
                TC cS = r + 1 < rows ? coef[idx + cols] : cC;
                TC cE = c + 1 < cols ? coef[idx + 1] : cC;
                TJ d = static_cast<TJ>(cC) * static_cast<TJ>(dN[idx]) +
                       static_cast<TJ>(cS) * static_cast<TJ>(dS[idx]) +
                       static_cast<TJ>(cC) * static_cast<TJ>(dW[idx]) +
                       static_cast<TJ>(cE) * static_cast<TJ>(dE[idx]);
                image[idx] += TJ(0.25) * lambda * d;
            }
        }
    }
}

class Srad final : public Benchmark {
  public:
    Srad() : model_("srad")
    {
        rows_ = scaled(224, 32);
        cols_ = rows_;
        iterations_ = 12;
        // Raw image values reach ~92: exp(92) overflows binary32 but
        // not binary64 (Rodinia extracts with exp() up front).
        rawImage_ = uniformVector(0xA5001, rows_ * cols_, 1.0, 92.0);
        buildModel();
    }

    std::string name() const override { return "srad"; }

    std::string
    description() const override
    {
        return "Speckle-reducing anisotropic diffusion for imaging";
    }

    bool isKernel() const override { return false; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    RunPlan
    prepare(const PrecisionMap& pm,
            const PrepareOptions&) const override
    {
        // The image is exponentiated from the raw doubles inside the
        // timed region (that extraction is where binary32 overflows),
        // so there is nothing to pre-convert — only knobs to resolve.
        RunPlan plan;
        plan.setKnob(kImage, pm.get(keyImage_));
        plan.setKnob(kDN, pm.get(keyGrads_));
        plan.setKnob(kCoef, pm.get(keyCoef_));
        return plan;
    }

    RunOutput
    execute(const RunPlan& plan,
            runtime::RunWorkspace& ws) const override
    {
        using runtime::Buffer;
        std::size_t n = rows_ * cols_;
        Buffer& image = ws.zeroed(kImage, n, plan.knob(kImage));
        Buffer& dN = ws.zeroed(kDN, n, plan.knob(kDN));
        Buffer& dS = ws.zeroed(kDS, n, plan.knob(kDN));
        Buffer& dW = ws.zeroed(kDW, n, plan.knob(kDN));
        Buffer& dE = ws.zeroed(kDE, n, plan.knob(kDN));
        Buffer& coef = ws.zeroed(kCoef, n, plan.knob(kCoef));

        // Extraction: J = exp(raw). Done at the image precision, as
        // in the original (this is where binary32 overflows).
        runtime::dispatch1(image.precision(), [&](auto tj) {
            using TJ = typename decltype(tj)::type;
            auto view = image.as<TJ>();
            for (std::size_t i = 0; i < n; ++i)
                view[i] = std::exp(static_cast<TJ>(rawImage_[i]));
        });

        runtime::dispatch3(
            image.precision(), dN.precision(), coef.precision(),
            [&](auto tj, auto tg, auto tc) {
                using TJ = typename decltype(tj)::type;
                using TG = typename decltype(tg)::type;
                using TC = typename decltype(tc)::type;
                sradRegion<TJ, TG, TC>(image.as<TJ>(), dN.as<TG>(),
                                       dS.as<TG>(), dW.as<TG>(),
                                       dE.as<TG>(), coef.as<TC>(),
                                       rows_, cols_, iterations_);
            });

        // Log compression back to display range.
        RunOutput out;
        out.values.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            out.values[i] = std::log(image.loadDouble(i));
        return out;
    }

  private:
    enum Slot : std::size_t { kImage, kDN, kDS, kDW, kDE, kCoef };

    void
    buildModel()
    {
        using namespace model;
        ModuleId m = model_.addModule("srad.c");

        FunctionId fmain = model_.addFunction(m, "main");
        VarId img = model_.addVariable(fmain, "J", realPointer(),
                                       "image");
        // The four gradient arrays are carved from one scratch pool.
        VarId gradPool = model_.addVariable(fmain, "grad_pool",
                                            realPointer(), "grads");
        const char* grads[] = {"dN", "dS", "dW", "dE"};
        for (const char* g : grads) {
            VarId v = model_.addVariable(fmain, g, realPointer(),
                                         "grads");
            model_.addAssign(v, gradPool);
        }
        VarId coef = model_.addVariable(fmain, "c", realPointer(),
                                        "coef");

        FunctionId fsrad = model_.addFunction(m, "srad_main_loop");
        VarId pImg = model_.addParameter(fsrad, "J", realPointer(),
                                         "image");
        VarId pCoef = model_.addParameter(fsrad, "c", realPointer(),
                                          "coef");
        model_.addCallBind(img, pImg);
        model_.addCallBind(coef, pCoef);
        const char* locals[] = {"sum",   "sum2", "meanROI", "varROI",
                                "q0sqr", "G2",   "L",       "num",
                                "den",   "qsqr", "D",       "cN"};
        for (const char* l : locals)
            model_.addVariable(fsrad, l, realScalar());
    }

    model::ProgramModel model_;
    std::size_t rows_;
    std::size_t cols_;
    std::size_t iterations_;
    std::vector<double> rawImage_;
    model::BindKeyId keyImage_ = model::internBindKey("image");
    model::BindKeyId keyGrads_ = model::internBindKey("grads");
    model::BindKeyId keyCoef_ = model::internBindKey("coef");
};

} // namespace

std::unique_ptr<Benchmark>
makeSrad()
{
    return std::make_unique<Srad>();
}

} // namespace hpcmixp::benchmarks
