file(REMOVE_RECURSE
  "CMakeFiles/property_runtime_test.dir/property_runtime_test.cc.o"
  "CMakeFiles/property_runtime_test.dir/property_runtime_test.cc.o.d"
  "property_runtime_test"
  "property_runtime_test.pdb"
  "property_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
