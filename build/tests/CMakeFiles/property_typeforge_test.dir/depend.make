# Empty dependencies file for property_typeforge_test.
# This may be replaced when dependencies are built.
