file(REMOVE_RECURSE
  "CMakeFiles/property_typeforge_test.dir/property_typeforge_test.cc.o"
  "CMakeFiles/property_typeforge_test.dir/property_typeforge_test.cc.o.d"
  "property_typeforge_test"
  "property_typeforge_test.pdb"
  "property_typeforge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_typeforge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
