file(REMOVE_RECURSE
  "CMakeFiles/insights_test.dir/insights_test.cc.o"
  "CMakeFiles/insights_test.dir/insights_test.cc.o.d"
  "insights_test"
  "insights_test.pdb"
  "insights_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
