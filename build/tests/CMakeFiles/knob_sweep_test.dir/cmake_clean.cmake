file(REMOVE_RECURSE
  "CMakeFiles/knob_sweep_test.dir/knob_sweep_test.cc.o"
  "CMakeFiles/knob_sweep_test.dir/knob_sweep_test.cc.o.d"
  "knob_sweep_test"
  "knob_sweep_test.pdb"
  "knob_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knob_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
