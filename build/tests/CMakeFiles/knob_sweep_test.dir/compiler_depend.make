# Empty compiler generated dependencies file for knob_sweep_test.
# This may be replaced when dependencies are built.
