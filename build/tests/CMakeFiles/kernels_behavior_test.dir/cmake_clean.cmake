file(REMOVE_RECURSE
  "CMakeFiles/kernels_behavior_test.dir/kernels_behavior_test.cc.o"
  "CMakeFiles/kernels_behavior_test.dir/kernels_behavior_test.cc.o.d"
  "kernels_behavior_test"
  "kernels_behavior_test.pdb"
  "kernels_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
