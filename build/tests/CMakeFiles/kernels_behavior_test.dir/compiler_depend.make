# Empty compiler generated dependencies file for kernels_behavior_test.
# This may be replaced when dependencies are built.
