file(REMOVE_RECURSE
  "CMakeFiles/property_metrics_test.dir/property_metrics_test.cc.o"
  "CMakeFiles/property_metrics_test.dir/property_metrics_test.cc.o.d"
  "property_metrics_test"
  "property_metrics_test.pdb"
  "property_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
