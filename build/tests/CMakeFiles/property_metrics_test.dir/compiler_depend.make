# Empty compiler generated dependencies file for property_metrics_test.
# This may be replaced when dependencies are built.
