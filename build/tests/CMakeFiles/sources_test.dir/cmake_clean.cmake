file(REMOVE_RECURSE
  "CMakeFiles/sources_test.dir/sources_test.cc.o"
  "CMakeFiles/sources_test.dir/sources_test.cc.o.d"
  "sources_test"
  "sources_test.pdb"
  "sources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
