# Empty dependencies file for typeforge_test.
# This may be replaced when dependencies are built.
