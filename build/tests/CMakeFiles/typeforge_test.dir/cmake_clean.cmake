file(REMOVE_RECURSE
  "CMakeFiles/typeforge_test.dir/typeforge_test.cc.o"
  "CMakeFiles/typeforge_test.dir/typeforge_test.cc.o.d"
  "typeforge_test"
  "typeforge_test.pdb"
  "typeforge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typeforge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
