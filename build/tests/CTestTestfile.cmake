# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/yaml_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/typeforge_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/property_search_test[1]_include.cmake")
include("/root/repo/build/tests/property_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/property_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/property_typeforge_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/sources_test[1]_include.cmake")
include("/root/repo/build/tests/insights_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/knob_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/parser_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
