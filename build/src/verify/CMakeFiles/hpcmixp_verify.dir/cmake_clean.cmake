file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_verify.dir/comparator.cc.o"
  "CMakeFiles/hpcmixp_verify.dir/comparator.cc.o.d"
  "CMakeFiles/hpcmixp_verify.dir/metrics.cc.o"
  "CMakeFiles/hpcmixp_verify.dir/metrics.cc.o.d"
  "libhpcmixp_verify.a"
  "libhpcmixp_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
