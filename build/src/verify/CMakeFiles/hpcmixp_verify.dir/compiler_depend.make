# Empty compiler generated dependencies file for hpcmixp_verify.
# This may be replaced when dependencies are built.
