file(REMOVE_RECURSE
  "libhpcmixp_verify.a"
)
