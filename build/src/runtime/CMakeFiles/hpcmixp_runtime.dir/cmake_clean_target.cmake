file(REMOVE_RECURSE
  "libhpcmixp_runtime.a"
)
