file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_runtime.dir/buffer.cc.o"
  "CMakeFiles/hpcmixp_runtime.dir/buffer.cc.o.d"
  "CMakeFiles/hpcmixp_runtime.dir/mp_io.cc.o"
  "CMakeFiles/hpcmixp_runtime.dir/mp_io.cc.o.d"
  "CMakeFiles/hpcmixp_runtime.dir/profiler.cc.o"
  "CMakeFiles/hpcmixp_runtime.dir/profiler.cc.o.d"
  "libhpcmixp_runtime.a"
  "libhpcmixp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
