# Empty compiler generated dependencies file for hpcmixp_runtime.
# This may be replaced when dependencies are built.
