
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/buffer.cc" "src/runtime/CMakeFiles/hpcmixp_runtime.dir/buffer.cc.o" "gcc" "src/runtime/CMakeFiles/hpcmixp_runtime.dir/buffer.cc.o.d"
  "/root/repo/src/runtime/mp_io.cc" "src/runtime/CMakeFiles/hpcmixp_runtime.dir/mp_io.cc.o" "gcc" "src/runtime/CMakeFiles/hpcmixp_runtime.dir/mp_io.cc.o.d"
  "/root/repo/src/runtime/profiler.cc" "src/runtime/CMakeFiles/hpcmixp_runtime.dir/profiler.cc.o" "gcc" "src/runtime/CMakeFiles/hpcmixp_runtime.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpcmixp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
