# Empty compiler generated dependencies file for hpcmixp_model.
# This may be replaced when dependencies are built.
