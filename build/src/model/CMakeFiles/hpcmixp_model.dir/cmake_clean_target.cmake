file(REMOVE_RECURSE
  "libhpcmixp_model.a"
)
