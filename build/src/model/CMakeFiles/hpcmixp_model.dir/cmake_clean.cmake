file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_model.dir/program_model.cc.o"
  "CMakeFiles/hpcmixp_model.dir/program_model.cc.o.d"
  "libhpcmixp_model.a"
  "libhpcmixp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
