# Empty dependencies file for hpcmixp_benchmarks.
# This may be replaced when dependencies are built.
