file(REMOVE_RECURSE
  "libhpcmixp_benchmarks.a"
)
