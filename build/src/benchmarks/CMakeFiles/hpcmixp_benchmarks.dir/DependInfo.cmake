
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/apps/blackscholes.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/blackscholes.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/blackscholes.cc.o.d"
  "/root/repo/src/benchmarks/apps/cfd.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/cfd.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/cfd.cc.o.d"
  "/root/repo/src/benchmarks/apps/hotspot.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/hotspot.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/hotspot.cc.o.d"
  "/root/repo/src/benchmarks/apps/hpccg.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/hpccg.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/hpccg.cc.o.d"
  "/root/repo/src/benchmarks/apps/kmeans.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/kmeans.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/kmeans.cc.o.d"
  "/root/repo/src/benchmarks/apps/lavamd.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/lavamd.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/lavamd.cc.o.d"
  "/root/repo/src/benchmarks/apps/srad.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/srad.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/apps/srad.cc.o.d"
  "/root/repo/src/benchmarks/benchmark.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/benchmark.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/benchmark.cc.o.d"
  "/root/repo/src/benchmarks/data.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/data.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/data.cc.o.d"
  "/root/repo/src/benchmarks/kernels/banded_lin_eq.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/banded_lin_eq.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/banded_lin_eq.cc.o.d"
  "/root/repo/src/benchmarks/kernels/diff_predictor.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/diff_predictor.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/diff_predictor.cc.o.d"
  "/root/repo/src/benchmarks/kernels/eos.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/eos.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/eos.cc.o.d"
  "/root/repo/src/benchmarks/kernels/gen_lin_recur.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/gen_lin_recur.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/gen_lin_recur.cc.o.d"
  "/root/repo/src/benchmarks/kernels/hydro_1d.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/hydro_1d.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/hydro_1d.cc.o.d"
  "/root/repo/src/benchmarks/kernels/iccg.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/iccg.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/iccg.cc.o.d"
  "/root/repo/src/benchmarks/kernels/innerprod.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/innerprod.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/innerprod.cc.o.d"
  "/root/repo/src/benchmarks/kernels/int_predict.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/int_predict.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/int_predict.cc.o.d"
  "/root/repo/src/benchmarks/kernels/planckian.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/planckian.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/planckian.cc.o.d"
  "/root/repo/src/benchmarks/kernels/tridiag.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/tridiag.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/kernels/tridiag.cc.o.d"
  "/root/repo/src/benchmarks/registry.cc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/registry.cc.o" "gcc" "src/benchmarks/CMakeFiles/hpcmixp_benchmarks.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hpcmixp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hpcmixp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcmixp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
