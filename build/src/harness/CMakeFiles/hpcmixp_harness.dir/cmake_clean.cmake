file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_harness.dir/analysis.cc.o"
  "CMakeFiles/hpcmixp_harness.dir/analysis.cc.o.d"
  "CMakeFiles/hpcmixp_harness.dir/harness.cc.o"
  "CMakeFiles/hpcmixp_harness.dir/harness.cc.o.d"
  "libhpcmixp_harness.a"
  "libhpcmixp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
