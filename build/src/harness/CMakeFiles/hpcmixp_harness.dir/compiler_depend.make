# Empty compiler generated dependencies file for hpcmixp_harness.
# This may be replaced when dependencies are built.
