file(REMOVE_RECURSE
  "libhpcmixp_harness.a"
)
