# Empty dependencies file for mixpbench-harness.
# This may be replaced when dependencies are built.
