file(REMOVE_RECURSE
  "CMakeFiles/mixpbench-harness.dir/main.cc.o"
  "CMakeFiles/mixpbench-harness.dir/main.cc.o.d"
  "mixpbench-harness"
  "mixpbench-harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixpbench-harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
