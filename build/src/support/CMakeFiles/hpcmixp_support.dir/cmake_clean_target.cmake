file(REMOVE_RECURSE
  "libhpcmixp_support.a"
)
