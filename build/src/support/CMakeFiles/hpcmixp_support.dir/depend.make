# Empty dependencies file for hpcmixp_support.
# This may be replaced when dependencies are built.
