file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_support.dir/cli.cc.o"
  "CMakeFiles/hpcmixp_support.dir/cli.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/env.cc.o"
  "CMakeFiles/hpcmixp_support.dir/env.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/json.cc.o"
  "CMakeFiles/hpcmixp_support.dir/json.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/logging.cc.o"
  "CMakeFiles/hpcmixp_support.dir/logging.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/rng.cc.o"
  "CMakeFiles/hpcmixp_support.dir/rng.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/stats.cc.o"
  "CMakeFiles/hpcmixp_support.dir/stats.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/string_util.cc.o"
  "CMakeFiles/hpcmixp_support.dir/string_util.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/table.cc.o"
  "CMakeFiles/hpcmixp_support.dir/table.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/thread_pool.cc.o"
  "CMakeFiles/hpcmixp_support.dir/thread_pool.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/timer.cc.o"
  "CMakeFiles/hpcmixp_support.dir/timer.cc.o.d"
  "CMakeFiles/hpcmixp_support.dir/yaml.cc.o"
  "CMakeFiles/hpcmixp_support.dir/yaml.cc.o.d"
  "libhpcmixp_support.a"
  "libhpcmixp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
