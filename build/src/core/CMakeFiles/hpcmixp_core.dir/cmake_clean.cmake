file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_core.dir/interchange.cc.o"
  "CMakeFiles/hpcmixp_core.dir/interchange.cc.o.d"
  "CMakeFiles/hpcmixp_core.dir/suite.cc.o"
  "CMakeFiles/hpcmixp_core.dir/suite.cc.o.d"
  "CMakeFiles/hpcmixp_core.dir/tuner.cc.o"
  "CMakeFiles/hpcmixp_core.dir/tuner.cc.o.d"
  "libhpcmixp_core.a"
  "libhpcmixp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
