file(REMOVE_RECURSE
  "libhpcmixp_core.a"
)
