# Empty compiler generated dependencies file for hpcmixp_core.
# This may be replaced when dependencies are built.
