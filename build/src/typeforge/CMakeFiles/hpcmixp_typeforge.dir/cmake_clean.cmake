file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_typeforge.dir/clustering.cc.o"
  "CMakeFiles/hpcmixp_typeforge.dir/clustering.cc.o.d"
  "CMakeFiles/hpcmixp_typeforge.dir/frontend/lexer.cc.o"
  "CMakeFiles/hpcmixp_typeforge.dir/frontend/lexer.cc.o.d"
  "CMakeFiles/hpcmixp_typeforge.dir/frontend/parser.cc.o"
  "CMakeFiles/hpcmixp_typeforge.dir/frontend/parser.cc.o.d"
  "CMakeFiles/hpcmixp_typeforge.dir/report.cc.o"
  "CMakeFiles/hpcmixp_typeforge.dir/report.cc.o.d"
  "libhpcmixp_typeforge.a"
  "libhpcmixp_typeforge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_typeforge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
