# Empty compiler generated dependencies file for hpcmixp_typeforge.
# This may be replaced when dependencies are built.
