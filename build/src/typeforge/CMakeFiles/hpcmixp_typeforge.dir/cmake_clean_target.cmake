file(REMOVE_RECURSE
  "libhpcmixp_typeforge.a"
)
