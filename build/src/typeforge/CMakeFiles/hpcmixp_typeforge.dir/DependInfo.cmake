
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typeforge/clustering.cc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/clustering.cc.o" "gcc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/clustering.cc.o.d"
  "/root/repo/src/typeforge/frontend/lexer.cc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/frontend/lexer.cc.o" "gcc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/frontend/lexer.cc.o.d"
  "/root/repo/src/typeforge/frontend/parser.cc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/frontend/parser.cc.o" "gcc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/frontend/parser.cc.o.d"
  "/root/repo/src/typeforge/report.cc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/report.cc.o" "gcc" "src/typeforge/CMakeFiles/hpcmixp_typeforge.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hpcmixp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcmixp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
