
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/combinational.cc" "src/search/CMakeFiles/hpcmixp_search.dir/combinational.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/combinational.cc.o.d"
  "/root/repo/src/search/compositional.cc" "src/search/CMakeFiles/hpcmixp_search.dir/compositional.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/compositional.cc.o.d"
  "/root/repo/src/search/config.cc" "src/search/CMakeFiles/hpcmixp_search.dir/config.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/config.cc.o.d"
  "/root/repo/src/search/context.cc" "src/search/CMakeFiles/hpcmixp_search.dir/context.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/context.cc.o.d"
  "/root/repo/src/search/delta_debug.cc" "src/search/CMakeFiles/hpcmixp_search.dir/delta_debug.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/delta_debug.cc.o.d"
  "/root/repo/src/search/driver.cc" "src/search/CMakeFiles/hpcmixp_search.dir/driver.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/driver.cc.o.d"
  "/root/repo/src/search/genetic.cc" "src/search/CMakeFiles/hpcmixp_search.dir/genetic.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/genetic.cc.o.d"
  "/root/repo/src/search/hierarchical.cc" "src/search/CMakeFiles/hpcmixp_search.dir/hierarchical.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/hierarchical.cc.o.d"
  "/root/repo/src/search/hierarchical_compositional.cc" "src/search/CMakeFiles/hpcmixp_search.dir/hierarchical_compositional.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/hierarchical_compositional.cc.o.d"
  "/root/repo/src/search/strategy.cc" "src/search/CMakeFiles/hpcmixp_search.dir/strategy.cc.o" "gcc" "src/search/CMakeFiles/hpcmixp_search.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpcmixp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
