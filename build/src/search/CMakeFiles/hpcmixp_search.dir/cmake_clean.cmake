file(REMOVE_RECURSE
  "CMakeFiles/hpcmixp_search.dir/combinational.cc.o"
  "CMakeFiles/hpcmixp_search.dir/combinational.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/compositional.cc.o"
  "CMakeFiles/hpcmixp_search.dir/compositional.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/config.cc.o"
  "CMakeFiles/hpcmixp_search.dir/config.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/context.cc.o"
  "CMakeFiles/hpcmixp_search.dir/context.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/delta_debug.cc.o"
  "CMakeFiles/hpcmixp_search.dir/delta_debug.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/driver.cc.o"
  "CMakeFiles/hpcmixp_search.dir/driver.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/genetic.cc.o"
  "CMakeFiles/hpcmixp_search.dir/genetic.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/hierarchical.cc.o"
  "CMakeFiles/hpcmixp_search.dir/hierarchical.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/hierarchical_compositional.cc.o"
  "CMakeFiles/hpcmixp_search.dir/hierarchical_compositional.cc.o.d"
  "CMakeFiles/hpcmixp_search.dir/strategy.cc.o"
  "CMakeFiles/hpcmixp_search.dir/strategy.cc.o.d"
  "libhpcmixp_search.a"
  "libhpcmixp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcmixp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
