# Empty compiler generated dependencies file for hpcmixp_search.
# This may be replaced when dependencies are built.
