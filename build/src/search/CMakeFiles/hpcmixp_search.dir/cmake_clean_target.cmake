file(REMOVE_RECURSE
  "libhpcmixp_search.a"
)
