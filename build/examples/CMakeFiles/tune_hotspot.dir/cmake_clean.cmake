file(REMOVE_RECURSE
  "CMakeFiles/tune_hotspot.dir/tune_hotspot.cpp.o"
  "CMakeFiles/tune_hotspot.dir/tune_hotspot.cpp.o.d"
  "tune_hotspot"
  "tune_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
