# Empty compiler generated dependencies file for tune_hotspot.
# This may be replaced when dependencies are built.
