/**
 * @file
 * Quickstart: tune one benchmark with one search algorithm.
 *
 * Usage: quickstart [--benchmark hydro-1d] [--algorithm DD]
 *                   [--threshold 1e-6]
 *
 * Walks the full HPC-MixPBench pipeline: Typeforge clustering of the
 * program model, delta-debugging search over the cluster space, and
 * final measurement with the paper's 10-run protocol.
 */

#include <iostream>

#include "core/mixpbench.h"
#include "support/cli.h"
#include "support/string_util.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    support::CommandLine cl(argc, argv);

    std::string name = cl.getString("benchmark", "hydro-1d");
    std::string algorithm = cl.getString("algorithm", "DD");
    double threshold = cl.getDouble("threshold", 1e-6);

    auto benchmark =
        benchmarks::BenchmarkRegistry::instance().create(name);
    std::cout << "benchmark : " << benchmark->name() << " — "
              << benchmark->description() << "\n";

    core::TunerOptions options;
    options.threshold = threshold;
    core::BenchmarkTuner tuner(*benchmark, options);

    std::cout << "model     : " << tuner.variableCount()
              << " tunable variables in " << tuner.clusterCount()
              << " clusters\n";
    typeforge::printClusters(std::cout, benchmark->programModel(),
                             tuner.clusters());

    core::TuneOutcome outcome = tuner.tune(algorithm);
    std::cout << "\nalgorithm : " << algorithm << "\n"
              << "evaluated : " << outcome.search.evaluated
              << " configurations ("
              << outcome.search.compileFailures
              << " compile failures)\n"
              << "winner    : " << outcome.clusterConfig.toString()
              << "  (1 = cluster lowered to binary32)\n"
              << "speedup   : " << outcome.finalSpeedup << "x\n"
              << "quality   : "
              << support::sciCompact(outcome.finalQualityLoss) << " "
              << benchmark->qualityMetric() << " (threshold "
              << support::sciCompact(threshold) << ")\n";
    return 0;
}
