/**
 * @file
 * Reproduces the paper's Listing-1 type-dependence example: builds the
 * vect_mult/foo program model and prints the computed partitioning,
 * which must be {arr, input}, {val, inout}, {scale}, {ratio}, {res}.
 *
 * Also prints the Table-II complexity metrics (TV/TC) for every
 * benchmark in the suite.
 */

#include <iostream>

#include "core/mixpbench.h"
#include "support/table.h"

int
main()
{
    using namespace hpcmixp;
    using namespace hpcmixp::model;

    // --- Listing 1 -----------------------------------------------------
    ProgramModel m("listing1");
    ModuleId mod = m.addModule("listing1.c");

    FunctionId vectMult = m.addFunction(mod, "vect_mult");
    VarId input = m.addParameter(vectMult, "input", realPointer());
    VarId inout = m.addParameter(vectMult, "inout", realPointer());
    VarId ratio = m.addParameter(vectMult, "ratio", realScalar());
    VarId res = m.addVariable(vectMult, "res", realScalar());

    FunctionId foo = m.addFunction(mod, "foo");
    VarId arr = m.addVariable(foo, "arr", realPointer());
    VarId val = m.addVariable(foo, "val", realScalar());
    VarId scale = m.addVariable(foo, "scale", realScalar());

    // vect_mult(10, arr, &val, scale); res += ratio * input[i];
    m.addCallBind(arr, input);
    m.addAddressOf(val, inout);
    m.addCallBind(scale, ratio);
    m.addAssign(res, ratio);

    std::cout << "Listing 1 type-dependence partitioning:\n";
    typeforge::printClusters(std::cout, m, typeforge::analyze(m));

    // --- Table II ------------------------------------------------------
    std::cout << "\nBenchmark analysis complexity (paper Table II):\n";
    support::Table table({"benchmark", "kind", "TV", "TC"});
    auto& registry = benchmarks::BenchmarkRegistry::instance();
    for (const auto& name : registry.names()) {
        auto bench = registry.create(name);
        auto row = typeforge::complexity(bench->programModel());
        table.addRow({name, bench->isKernel() ? "kernel" : "app",
                      support::Table::cell(
                          static_cast<long>(row.totalVariables)),
                      support::Table::cell(
                          static_cast<long>(row.totalClusters))});
    }
    table.print(std::cout);
    return 0;
}
