/**
 * @file
 * The runtime library in action: the paper's Listing 2 -> Listing 3
 * transformation.
 *
 * A pipeline reads a binary input file written in double precision,
 * computes on it, and writes a binary output file — with the memory
 * precision chosen at runtime. mp_fread / mp_fwrite handle all
 * conversions between the fixed disk format and the configured memory
 * type, which is exactly what makes such code tunable by a
 * mixed-precision tool (paper Section III-A.a).
 */

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "runtime/buffer.h"
#include "runtime/dispatch.h"
#include "runtime/mp_io.h"
#include "support/rng.h"

namespace {

using namespace hpcmixp;
using runtime::Buffer;
using runtime::Precision;

/** The computation of Listing 2's performComputation(). */
template <class T>
void
performComputation(std::span<T> data)
{
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = data[i] * data[i] + T(0.5);
}

/** Listing 3's foo(): read -> compute -> write, at @p memoryType. */
void
pipeline(const std::string& inputPath, const std::string& outputPath,
         std::size_t elements, Precision memoryType)
{
    // *ptr = (double*) mp_malloc(elements, *ptr);
    // mp_fread(*ptr, DOUBLE, elements, fd);
    Buffer data = runtime::mpReadFile(inputPath, Precision::Float64,
                                      elements, memoryType);

    runtime::dispatch1(data.precision(), [&](auto tag) {
        using T = typename decltype(tag)::type;
        performComputation(data.as<T>());
    });

    // mp_fwrite(*ptr, DOUBLE, elements, fd);
    runtime::mpWriteFile(data, Precision::Float64, outputPath);
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    const std::size_t elements = 1 << 16;
    auto dir = fs::temp_directory_path();
    std::string input = (dir / "hpcmixp_input.bin").string();
    std::string doubleOut = (dir / "hpcmixp_out_double.bin").string();
    std::string singleOut = (dir / "hpcmixp_out_single.bin").string();

    // Produce the double-precision input file.
    support::Pcg32 rng(7);
    std::vector<double> raw(elements);
    support::fillUniform(rng, raw, 0.0, 1.0);
    runtime::mpWriteFile(
        Buffer::fromDoubles(raw, Precision::Float64),
        Precision::Float64, input);

    // Same pipeline, two memory precisions — no source changes.
    pipeline(input, doubleOut, elements, Precision::Float64);
    pipeline(input, singleOut, elements, Precision::Float32);

    // Compare the two outputs the way the verification library would.
    Buffer a = runtime::mpReadFile(doubleOut, Precision::Float64,
                                   elements, Precision::Float64);
    Buffer b = runtime::mpReadFile(singleOut, Precision::Float64,
                                   elements, Precision::Float64);
    double mae = 0.0;
    for (std::size_t i = 0; i < elements; ++i)
        mae += std::abs(a.loadDouble(i) - b.loadDouble(i));
    mae /= static_cast<double>(elements);

    std::cout << "elements          : " << elements << "\n"
              << "double output     : " << doubleOut << "\n"
              << "single output     : " << singleOut << "\n"
              << "MAE (single vs double memory): " << mae << "\n"
              << "disk format stayed binary64 in both runs.\n";

    fs::remove(input);
    fs::remove(doubleOut);
    fs::remove(singleOut);
    return 0;
}
