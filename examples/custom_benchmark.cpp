/**
 * @file
 * Extending the suite: registering a user benchmark and a user quality
 * metric, then tuning with the genetic algorithm.
 *
 * The benchmark is a SAXPY-with-reduction kernel; the custom metric is
 * the maximum relative error, registered through the verification
 * library's extension point (paper Section III-A.b).
 */

#include <cmath>
#include <iostream>

#include "core/mixpbench.h"
#include "runtime/dispatch.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace {

using namespace hpcmixp;

/** y = a*x + y followed by a mean reduction, as a user benchmark. */
class SaxpyBenchmark final : public benchmarks::Benchmark {
  public:
    SaxpyBenchmark() : model_("saxpy")
    {
        n_ = 200000;
        support::Pcg32 rng(42);
        xData_.resize(n_);
        yData_.resize(n_);
        support::fillUniform(rng, xData_, 0.0, 0.1);
        support::fillUniform(rng, yData_, 0.0, 0.1);

        using namespace model;
        ModuleId m = model_.addModule("saxpy.c");
        VarId gx = model_.addGlobal(m, "x", realPointer(), "x");
        VarId gy = model_.addGlobal(m, "y", realPointer(), "y");
        FunctionId f = model_.addFunction(m, "saxpy");
        VarId px = model_.addParameter(f, "px", realPointer(), "x");
        VarId py = model_.addParameter(f, "py", realPointer(), "y");
        model_.addCallBind(gx, px);
        model_.addCallBind(gy, py);
        model_.addVariable(f, "a", realScalar());
    }

    std::string name() const override { return "saxpy"; }
    std::string description() const override
    {
        return "User-registered SAXPY kernel";
    }
    bool isKernel() const override { return true; }
    std::string qualityMetric() const override { return "MAXREL"; }

    const model::ProgramModel& programModel() const override
    {
        return model_;
    }

    benchmarks::RunOutput
    run(const benchmarks::PrecisionMap& pm) const override
    {
        using runtime::Buffer;
        Buffer x = Buffer::fromDoubles(xData_, pm.get("x"));
        Buffer y = Buffer::fromDoubles(yData_, pm.get("y"));
        benchmarks::RunOutput out;
        runtime::dispatch2(
            x.precision(), y.precision(), [&](auto tx, auto ty) {
                using TX = typename decltype(tx)::type;
                using TY = typename decltype(ty)::type;
                auto xs = x.as<TX>();
                auto ys = y.as<TY>();
                for (std::size_t rep = 0; rep < 40; ++rep)
                    for (std::size_t i = 0; i < xs.size(); ++i)
                        ys[i] += TY(0.25) * TY(xs[i]);
            });
        out.values = y.toDoubles();
        return out;
    }

  private:
    model::ProgramModel model_;
    std::size_t n_;
    std::vector<double> xData_;
    std::vector<double> yData_;
};

/** Maximum relative error, as a user metric. */
class MaxRelativeError final : public verify::Metric {
  public:
    std::string name() const override { return "MAXREL"; }

    double
    compute(std::span<const double> reference,
            std::span<const double> test) const override
    {
        double worst = 0.0;
        for (std::size_t i = 0; i < reference.size(); ++i) {
            double denom = std::max(std::abs(reference[i]), 1e-300);
            worst = std::max(worst,
                             std::abs(reference[i] - test[i]) / denom);
        }
        return worst;
    }
};

} // namespace

int
main()
{
    using namespace hpcmixp;

    verify::MetricRegistry::instance().add(
        std::make_unique<MaxRelativeError>());
    benchmarks::BenchmarkRegistry::instance().add(
        "saxpy", benchmarks::BenchmarkKind::Kernel,
        [] { return std::make_unique<SaxpyBenchmark>(); });

    auto benchmark =
        benchmarks::BenchmarkRegistry::instance().create("saxpy");
    core::TunerOptions options;
    options.threshold = 1e-4; // max relative error bound
    core::BenchmarkTuner tuner(*benchmark, options);

    std::cout << "saxpy: " << tuner.variableCount() << " variables, "
              << tuner.clusterCount() << " clusters\n";

    auto outcome = tuner.tune("GA");
    std::cout << "GA found config " << outcome.clusterConfig.toString()
              << " with speedup " << outcome.finalSpeedup
              << "x at MAXREL "
              << support::sciCompact(outcome.finalQualityLoss) << "\n";
    return 0;
}
