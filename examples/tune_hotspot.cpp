/**
 * @file
 * Compare all six search algorithms on the Hotspot thermal simulation
 * at the paper's three quality thresholds — a miniature Table V for a
 * single application, printed as one table per threshold.
 *
 * Usage: tune_hotspot [--benchmark hotspot] [--budget 400]
 */

#include <iostream>

#include "core/mixpbench.h"
#include "support/cli.h"
#include "support/string_util.h"
#include "support/table.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    support::CommandLine cl(argc, argv);
    std::string name = cl.getString("benchmark", "hotspot");
    auto budget =
        static_cast<std::size_t>(cl.getLong("budget", 400));

    const double thresholds[] = {1e-3, 1e-6, 1e-8};
    const char* algorithms[] = {"CB", "CM", "DD", "HR", "HC", "GA"};

    for (double threshold : thresholds) {
        std::cout << "\n=== " << name << " @ quality threshold "
                  << support::sciCompact(threshold) << " ===\n";
        support::Table table({"algorithm", "speedup", "EV",
                              "compile-fails", "quality", "status"});
        for (const char* algorithm : algorithms) {
            auto benchmark =
                benchmarks::BenchmarkRegistry::instance().create(name);
            core::TunerOptions options;
            options.threshold = threshold;
            options.budget = {budget, 0.0};
            core::BenchmarkTuner tuner(*benchmark, options);
            auto outcome = tuner.tune(algorithm);
            table.addRow(
                {algorithm,
                 support::Table::cell(outcome.finalSpeedup, 2),
                 support::Table::cell(
                     static_cast<long>(outcome.search.evaluated)),
                 support::Table::cell(static_cast<long>(
                     outcome.search.compileFailures)),
                 support::Table::cellSci(outcome.finalQualityLoss),
                 outcome.search.timedOut ? "timeout" : "ok"});
        }
        table.print(std::cout);
    }
    return 0;
}
