/**
 * @file
 * Extending the search framework: registering a new strategy.
 *
 * The paper extended CRAFT with a genetic algorithm through exactly
 * this kind of plugin point. Here we add a seeded random search —
 * a common baseline in autotuning studies — and compare it against
 * delta debugging on a kernel benchmark.
 */

#include <iostream>

#include "core/mixpbench.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/table.h"

namespace {

using namespace hpcmixp;
using namespace hpcmixp::search;

/** Pure random sampling of the cluster space, budgeted by trials. */
class RandomSearch final : public SearchStrategy {
  public:
    explicit RandomSearch(std::size_t trials = 20,
                          std::uint64_t seed = 99)
        : trials_(trials), seed_(seed)
    {
    }

    std::string name() const override { return "random"; }
    std::string code() const override { return "RS"; }
    Granularity granularity() const override
    {
        return Granularity::Cluster;
    }

    void
    run(SearchContext& ctx) override
    {
        support::Pcg32 rng(seed_);
        std::size_t n = ctx.siteCount();
        for (std::size_t t = 0; t < trials_; ++t) {
            Config cfg(n);
            for (std::size_t i = 0; i < n; ++i)
                cfg.set(i, rng.chance(0.5));
            ctx.evaluate(cfg);
        }
    }

  private:
    std::size_t trials_;
    std::uint64_t seed_;
};

} // namespace

int
main()
{
    using namespace hpcmixp;

    auto& registry = search::StrategyRegistry::instance();
    if (!registry.has("RS"))
        registry.add("RS",
                     [] { return std::make_unique<RandomSearch>(); });

    support::Table table(
        {"algorithm", "speedup", "EV", "quality"});
    for (const char* code : {"DD", "GA", "RS"}) {
        auto bench =
            benchmarks::BenchmarkRegistry::instance().create("eos");
        core::TunerOptions options;
        options.threshold = 1e-6;
        core::BenchmarkTuner tuner(*bench, options);
        auto outcome = tuner.tune(code);
        table.addRow(
            {code, support::Table::cell(outcome.finalSpeedup, 2),
             support::Table::cell(
                 static_cast<long>(outcome.search.evaluated)),
             support::sciCompact(outcome.finalQualityLoss)});
    }
    std::cout << "eos @ 1e-6 — delta debugging vs genetic vs the"
                 " newly registered random search:\n";
    table.print(std::cout);
    return 0;
}
