/**
 * @file
 * Regenerates **Table IV**: per-application speedup and quality loss
 * when the entire program runs in single precision, compared to the
 * double-precision original. This bounds what any mixed-precision
 * search can achieve.
 *
 * Expected shape: LavaMD shows the largest speedup (SIMD + working-set
 * effects on its interaction loop); Hotspot benefits with negligible
 * quality loss; SRAD's quality is destroyed (NaN) by binary32
 * overflow; K-means keeps MCR = 0 yet gains little; HPCCG and
 * Blackscholes sit near 1x.
 */

#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);
    options.tuner.threshold = 1e-3; // irrelevant: we profile, not search

    std::cout << "Table IV: application speedup and quality loss,"
                 " single vs double precision\n";
    support::Table table(
        {"application", "speedup", "metric", "quality-loss"});
    auto& registry = benchmarks::BenchmarkRegistry::instance();
    for (const auto& name : registry.applicationNames()) {
        auto bench = registry.create(name);
        core::BenchmarkTuner tuner(*bench, options.tuner);
        auto all =
            search::Config::allLowered(tuner.clusterCount());
        auto eval = tuner.finalMeasure(all);
        table.addRow({name, support::Table::cell(eval.speedup, 2),
                      bench->qualityMetric(),
                      support::Table::cellSci(eval.qualityLoss)});
    }
    benchutil::emit(table, options);
    return 0;
}
