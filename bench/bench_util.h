#ifndef HPCMIXP_BENCH_BENCH_UTIL_H_
#define HPCMIXP_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared scaffolding for the table/figure bench binaries.
 *
 * Every bench accepts:
 *   --budget N    max evaluated configurations per search
 *                 (stands in for the paper's 24-hour limit)
 *   --seconds S   wall-clock cap per search (0 = none)
 *   --reps R      timing repetitions per search evaluation
 *   --csv         emit CSV instead of an aligned table
 * and honours HPCMIXP_QUICK=1 for smoke runs.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "core/mixpbench.h"
#include "support/cli.h"
#include "support/env.h"
#include "support/string_util.h"
#include "support/table.h"

namespace hpcmixp::benchutil {

/** Options common to all bench binaries. */
struct BenchOptions {
    core::TunerOptions tuner;
    bool csv = false;
};

/** Parse common flags; quick mode shrinks the budget automatically. */
inline BenchOptions
parseOptions(int argc, char** argv, std::size_t defaultBudget = 300)
{
    support::CommandLine cl(argc, argv);
    BenchOptions options;
    if (support::quickMode())
        defaultBudget = std::min<std::size_t>(defaultBudget, 60);
    options.tuner.budget.maxEvaluations = static_cast<std::size_t>(
        cl.getLong("budget", static_cast<long>(defaultBudget)));
    options.tuner.budget.maxSeconds = cl.getDouble("seconds", 120.0);
    options.tuner.searchReps = support::timingReps(
        static_cast<std::size_t>(cl.getLong("reps", 3)));
    options.tuner.finalReps = 10;
    options.csv = cl.getBool("csv", false);
    return options;
}

/** Print a table either aligned or as CSV. */
inline void
emit(const support::Table& table, const BenchOptions& options)
{
    if (options.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/** Quality formatted in units of 1e-9, as in the paper's Table III. */
inline std::string
qualityNano(double loss)
{
    if (std::isnan(loss))
        return "NaN";
    return support::Table::cell(loss * 1e9, 2);
}

} // namespace hpcmixp::benchutil

#endif // HPCMIXP_BENCH_BENCH_UTIL_H_
