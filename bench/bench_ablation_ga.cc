/**
 * @file
 * Ablation: genetic-algorithm parameter sensitivity (paper Insight 3).
 *
 * Sweeps GA population size and generation count on two applications
 * and reports evaluated configurations and achieved speedup. The
 * paper notes GA's analysis time is the most predictable — bounded by
 * its termination criterion — but that a small iteration budget can
 * prevent it from finding configurations with speedups.
 */

#include "bench/bench_util.h"
#include "search/genetic.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);
    options.tuner.threshold = 1e-6;

    const std::size_t populations[] = {4, 6, 10};
    const std::size_t generations[] = {2, 4, 8};
    const char* apps[] = {"hotspot", "lavamd"};

    std::cout << "Ablation: GA population/generation sweep"
                 " (threshold 1e-6)\n";
    support::Table table({"application", "population", "generations",
                          "evaluated", "speedup"});
    for (const char* name : apps) {
        for (std::size_t pop : populations) {
            for (std::size_t gen : generations) {
                auto bench =
                    benchmarks::BenchmarkRegistry::instance().create(
                        name);
                core::BenchmarkTuner tuner(*bench, options.tuner);
                search::GaOptions gaOptions;
                gaOptions.population = pop;
                gaOptions.generations = gen;
                search::GeneticSearch ga(gaOptions);
                auto result = search::runSearch(
                    tuner.clusterProblem(), ga, options.tuner.budget);
                double speedup = 1.0;
                if (result.foundImprovement) {
                    auto eval = tuner.finalMeasure(result.best);
                    speedup = eval.speedup;
                }
                table.addRow(
                    {name,
                     support::Table::cell(static_cast<long>(pop)),
                     support::Table::cell(static_cast<long>(gen)),
                     support::Table::cell(
                         static_cast<long>(result.evaluated)),
                     support::Table::cell(speedup, 2)});
            }
        }
    }
    benchutil::emit(table, options);
    return 0;
}
