/**
 * @file
 * Measurement: EV saved by the mixp-lint static prior.
 *
 * For every annotated benchmark and every search strategy, tunes the
 * benchmark twice from the same baseline — --static-prior off, then on
 * — and reports EV (configurations actually executed) for both runs,
 * the relative reduction, and whether the accuracy outcome of the
 * winning configuration is unchanged (both winners within the quality
 * threshold). The pruning claim is only honest when the AC column
 * stays "yes": a prior that saves evaluations by pinning the cluster
 * the search would have profitably lowered is a regression, not an
 * optimisation.
 *
 * A second section isolates the certified caps: on the four-rung
 * ladder (double,float,half,bfloat16) where cluster caps actually
 * bite, every range-annotated benchmark is tuned with the prior on
 * twice — certified caps off (the pure fact-score heuristic) and on.
 * Certificates only ever tighten a cluster's cap, so EV with the
 * certified caps must be no larger, and on benchmarks where a
 * heuristically-unbounded cluster is certified through float only it
 * is strictly smaller — at unchanged accuracy, because the pruned
 * rungs are exactly the ones the interval analysis proved unsafe.
 *
 * Extra flag beyond the common set:
 *   --json F   write the full result document to F
 *              (default BENCH_static_prior.json)
 */

#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/ladder.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;

/** One strategy A/B measurement on one benchmark. */
struct PriorRun {
    std::string benchmark;
    std::string strategy;
    std::size_t evOff = 0;
    std::size_t evOn = 0;
    double reduction = 0.0; ///< 1 - evOn/evOff
    bool acMatch = false;   ///< both winners meet the threshold
    double qualityOff = 0.0;
    double qualityOn = 0.0;
    double speedupOn = 1.0;
};

/** One certified-vs-heuristic A/B on the four-rung ladder. */
struct CertifiedRun {
    std::string benchmark;
    std::string strategy;
    std::size_t evHeuristic = 0;
    std::size_t evCertified = 0;
    double reduction = 0.0; ///< 1 - evCertified/evHeuristic
    bool acMatch = false;   ///< both winners meet the threshold
    double qualityHeuristic = 0.0;
    double qualityCertified = 0.0;
    double speedupCertified = 1.0;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv, 500);
    support::CommandLine cl(argc, argv);
    std::string jsonPath =
        cl.getString("json", "BENCH_static_prior.json");

    // The annotated subset: benchmarks whose models carry dataflow
    // facts, so the lint prior has verdicts to act on.
    std::vector<std::string> names{"innerprod",     "hpccg",
                                   "banded-lin-eq", "gen-lin-recur",
                                   "iccg",          "tridiag"};
    std::vector<std::string> strategies{"CB", "CM", "DD",
                                        "GA", "HR", "HC"};
    if (support::quickMode())
        strategies = {"CB", "CM", "DD"};

    std::vector<PriorRun> runs;
    support::Table table({"benchmark", "strategy", "EV off", "EV on",
                          "saved", "AC", "speedup"});

    for (const std::string& name : names) {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(name);
        core::BenchmarkTuner tuner(*benchmark, options.tuner);
        for (const std::string& code : strategies) {
            PriorRun run;
            run.benchmark = name;
            run.strategy = code;

            tuner.setStaticPriorMode(search::PriorMode::Off);
            core::TuneOutcome off = tuner.tune(code);
            tuner.setStaticPriorMode(search::PriorMode::On);
            core::TuneOutcome on = tuner.tune(code);

            run.evOff = off.search.evaluated;
            run.evOn = on.search.evaluated;
            run.reduction =
                run.evOff == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(run.evOn) /
                                static_cast<double>(run.evOff);
            run.qualityOff = off.finalQualityLoss;
            run.qualityOn = on.finalQualityLoss;
            run.speedupOn = on.finalSpeedup;
            // Both winners within the threshold (the baseline, when a
            // search found no improvement, trivially qualifies).
            run.acMatch =
                off.finalQualityLoss <= options.tuner.threshold &&
                on.finalQualityLoss <= options.tuner.threshold;
            runs.push_back(run);

            table.addRow(
                {name, code,
                 support::Table::cell(static_cast<long>(run.evOff)),
                 support::Table::cell(static_cast<long>(run.evOn)),
                 support::Table::cell(100.0 * run.reduction, 1),
                 run.acMatch ? "yes" : "NO",
                 support::Table::cell(run.speedupOn, 2)});
        }
    }

    std::cout << "Static-prior EV reduction (threshold "
              << options.tuner.threshold << ", budget "
              << options.tuner.budget.maxEvaluations << ")\n";
    benchutil::emit(table, options);

    // ---- certified caps vs the heuristic prior -----------------------
    // The range-annotated benchmarks, where the abstract interpreter
    // has intervals to certify. Measured on the four-rung ladder: with
    // only double->float the heuristic caps (KeepDouble -> 0, Unknown
    // -> 1) already exclude every sub-float rung and the certificates
    // have nothing left to tighten.
    const std::string kCertLadder = "double,float,half,bfloat16";
    std::vector<std::string> certNames{"innerprod", "diff-predictor",
                                       "eos", "planckian",
                                       "int-predict"};
    core::TunerOptions certTunerOptions = options.tuner;
    certTunerOptions.ladder = runtime::PrecisionLadder::parse(kCertLadder);

    std::vector<CertifiedRun> certRuns;
    support::Table certTable({"benchmark", "strategy", "EV heur",
                              "EV cert", "saved", "AC", "speedup"});
    std::size_t evHeuristicTotal = 0;
    std::size_t evCertifiedTotal = 0;
    for (const std::string& name : certNames) {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(name);
        core::BenchmarkTuner tuner(*benchmark, certTunerOptions);
        tuner.setStaticPriorMode(search::PriorMode::On);
        for (const std::string& code : strategies) {
            CertifiedRun run;
            run.benchmark = name;
            run.strategy = code;

            tuner.setCertifiedCaps(false);
            core::TuneOutcome heur = tuner.tune(code);
            tuner.setCertifiedCaps(true);
            core::TuneOutcome cert = tuner.tune(code);

            run.evHeuristic = heur.search.evaluated;
            run.evCertified = cert.search.evaluated;
            run.reduction =
                run.evHeuristic == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(run.evCertified) /
                                static_cast<double>(run.evHeuristic);
            run.qualityHeuristic = heur.finalQualityLoss;
            run.qualityCertified = cert.finalQualityLoss;
            run.speedupCertified = cert.finalSpeedup;
            run.acMatch =
                heur.finalQualityLoss <= options.tuner.threshold &&
                cert.finalQualityLoss <= options.tuner.threshold;
            evHeuristicTotal += run.evHeuristic;
            evCertifiedTotal += run.evCertified;
            certRuns.push_back(run);

            certTable.addRow(
                {name, code,
                 support::Table::cell(
                     static_cast<long>(run.evHeuristic)),
                 support::Table::cell(
                     static_cast<long>(run.evCertified)),
                 support::Table::cell(100.0 * run.reduction, 1),
                 run.acMatch ? "yes" : "NO",
                 support::Table::cell(run.speedupCertified, 2)});
        }
    }

    std::cout << "\nCertified caps vs heuristic prior (ladder "
              << kCertLadder << ", prior on)\n";
    benchutil::emit(certTable, options);
    std::cout << "total EV: heuristic " << evHeuristicTotal
              << ", certified " << evCertifiedTotal << '\n';

    using support::json::Value;
    Value doc = Value::object();
    doc.set("threshold", Value::number(options.tuner.threshold));
    doc.set("budget",
            Value::number(static_cast<double>(
                options.tuner.budget.maxEvaluations)));
    Value rows = Value::array();
    for (const PriorRun& run : runs) {
        Value row = Value::object();
        row.set("benchmark", Value::string(run.benchmark));
        row.set("strategy", Value::string(run.strategy));
        row.set("ev_off", Value::number(static_cast<double>(run.evOff)));
        row.set("ev_on", Value::number(static_cast<double>(run.evOn)));
        row.set("reduction", Value::number(run.reduction));
        row.set("ac_match", Value::boolean(run.acMatch));
        row.set("quality_off", Value::number(run.qualityOff));
        row.set("quality_on", Value::number(run.qualityOn));
        row.set("speedup_on", Value::number(run.speedupOn));
        rows.push(std::move(row));
    }
    doc.set("runs", std::move(rows));

    Value certDoc = Value::object();
    certDoc.set("ladder", Value::string(kCertLadder));
    certDoc.set("ev_heuristic_total",
                Value::number(static_cast<double>(evHeuristicTotal)));
    certDoc.set("ev_certified_total",
                Value::number(static_cast<double>(evCertifiedTotal)));
    Value certRows = Value::array();
    for (const CertifiedRun& run : certRuns) {
        Value row = Value::object();
        row.set("benchmark", Value::string(run.benchmark));
        row.set("strategy", Value::string(run.strategy));
        row.set("ev_heuristic",
                Value::number(static_cast<double>(run.evHeuristic)));
        row.set("ev_certified",
                Value::number(static_cast<double>(run.evCertified)));
        row.set("reduction", Value::number(run.reduction));
        row.set("ac_match", Value::boolean(run.acMatch));
        row.set("quality_heuristic",
                Value::number(run.qualityHeuristic));
        row.set("quality_certified",
                Value::number(run.qualityCertified));
        row.set("speedup_certified",
                Value::number(run.speedupCertified));
        certRows.push(std::move(row));
    }
    certDoc.set("runs", std::move(certRows));
    doc.set("certified", std::move(certDoc));

    std::ofstream out(jsonPath);
    if (!out)
        support::fatal("cannot open --json output file");
    out << doc.dump(2) << '\n';
    return 0;
}
