/**
 * @file
 * Measurement: EV saved by the mixp-lint static prior.
 *
 * For every annotated benchmark and every search strategy, tunes the
 * benchmark twice from the same baseline — --static-prior off, then on
 * — and reports EV (configurations actually executed) for both runs,
 * the relative reduction, and whether the accuracy outcome of the
 * winning configuration is unchanged (both winners within the quality
 * threshold). The pruning claim is only honest when the AC column
 * stays "yes": a prior that saves evaluations by pinning the cluster
 * the search would have profitably lowered is a regression, not an
 * optimisation.
 *
 * Extra flag beyond the common set:
 *   --json F   write the full result document to F
 *              (default BENCH_static_prior.json)
 */

#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;

/** One strategy A/B measurement on one benchmark. */
struct PriorRun {
    std::string benchmark;
    std::string strategy;
    std::size_t evOff = 0;
    std::size_t evOn = 0;
    double reduction = 0.0; ///< 1 - evOn/evOff
    bool acMatch = false;   ///< both winners meet the threshold
    double qualityOff = 0.0;
    double qualityOn = 0.0;
    double speedupOn = 1.0;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv, 500);
    support::CommandLine cl(argc, argv);
    std::string jsonPath =
        cl.getString("json", "BENCH_static_prior.json");

    // The annotated subset: benchmarks whose models carry dataflow
    // facts, so the lint prior has verdicts to act on.
    std::vector<std::string> names{"innerprod",     "hpccg",
                                   "banded-lin-eq", "gen-lin-recur",
                                   "iccg",          "tridiag"};
    std::vector<std::string> strategies{"CB", "CM", "DD",
                                        "GA", "HR", "HC"};
    if (support::quickMode())
        strategies = {"CB", "CM", "DD"};

    std::vector<PriorRun> runs;
    support::Table table({"benchmark", "strategy", "EV off", "EV on",
                          "saved", "AC", "speedup"});

    for (const std::string& name : names) {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(name);
        core::BenchmarkTuner tuner(*benchmark, options.tuner);
        for (const std::string& code : strategies) {
            PriorRun run;
            run.benchmark = name;
            run.strategy = code;

            tuner.setStaticPriorMode(search::PriorMode::Off);
            core::TuneOutcome off = tuner.tune(code);
            tuner.setStaticPriorMode(search::PriorMode::On);
            core::TuneOutcome on = tuner.tune(code);

            run.evOff = off.search.evaluated;
            run.evOn = on.search.evaluated;
            run.reduction =
                run.evOff == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(run.evOn) /
                                static_cast<double>(run.evOff);
            run.qualityOff = off.finalQualityLoss;
            run.qualityOn = on.finalQualityLoss;
            run.speedupOn = on.finalSpeedup;
            // Both winners within the threshold (the baseline, when a
            // search found no improvement, trivially qualifies).
            run.acMatch =
                off.finalQualityLoss <= options.tuner.threshold &&
                on.finalQualityLoss <= options.tuner.threshold;
            runs.push_back(run);

            table.addRow(
                {name, code,
                 support::Table::cell(static_cast<long>(run.evOff)),
                 support::Table::cell(static_cast<long>(run.evOn)),
                 support::Table::cell(100.0 * run.reduction, 1),
                 run.acMatch ? "yes" : "NO",
                 support::Table::cell(run.speedupOn, 2)});
        }
    }

    std::cout << "Static-prior EV reduction (threshold "
              << options.tuner.threshold << ", budget "
              << options.tuner.budget.maxEvaluations << ")\n";
    benchutil::emit(table, options);

    using support::json::Value;
    Value doc = Value::object();
    doc.set("threshold", Value::number(options.tuner.threshold));
    doc.set("budget",
            Value::number(static_cast<double>(
                options.tuner.budget.maxEvaluations)));
    Value rows = Value::array();
    for (const PriorRun& run : runs) {
        Value row = Value::object();
        row.set("benchmark", Value::string(run.benchmark));
        row.set("strategy", Value::string(run.strategy));
        row.set("ev_off", Value::number(static_cast<double>(run.evOff)));
        row.set("ev_on", Value::number(static_cast<double>(run.evOn)));
        row.set("reduction", Value::number(run.reduction));
        row.set("ac_match", Value::boolean(run.acMatch));
        row.set("quality_off", Value::number(run.qualityOff));
        row.set("quality_on", Value::number(run.qualityOn));
        row.set("speedup_on", Value::number(run.speedupOn));
        rows.push(std::move(row));
    }
    doc.set("runs", std::move(rows));
    std::ofstream out(jsonPath);
    if (!out)
        support::fatal("cannot open --json output file");
    out << doc.dump(2) << '\n';
    return 0;
}
