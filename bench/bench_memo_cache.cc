/**
 * @file
 * Measurement: the persistent memo-cache and the cache-racing
 * portfolio.
 *
 * For every benchmark and strategy, tunes twice from one baseline with
 * a fresh on-disk memo store — a cold campaign that executes and
 * publishes everything, then a warm campaign over the reopened store —
 * and reports EV and evaluation throughput for both. The warm column
 * is the headline: a warm rerun must re-execute *nothing* (EV 0, all
 * memo hits). Then all strategies race as a portfolio against one
 * shared cold store; the portfolio is honest when its wall clock beats
 * the slowest solo strategy while its winner's configuration is no
 * worse than the best solo one.
 *
 * Extra flag beyond the common set:
 *   --json F   write the full result document to F
 *              (default BENCH_memo_cache.json)
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;

/** Cold/warm measurement of one strategy on one benchmark. */
struct MemoRun {
    std::string benchmark;
    std::string strategy;
    std::size_t evCold = 0;
    double coldSeconds = 0.0;
    double coldEvalsPerSec = 0.0;
    std::size_t evWarm = 0;
    std::size_t warmMemoHits = 0;
    double warmSeconds = 0.0;
    double warmQueriesPerSec = 0.0;
    double speedup = 1.0; ///< cold winner, final protocol
};

/** Portfolio-vs-singles measurement on one benchmark. */
struct PortfolioRun {
    std::string benchmark;
    std::string winner;           ///< best-at-budget winner strategy
    double bestWallSeconds = 0.0; ///< best-at-budget portfolio wall
    double raceWallSeconds = 0.0; ///< first-to-finish portfolio wall
    double winnerSpeedup = 1.0;   ///< winner config, final protocol
    double bestSingleSpeedup = 1.0; ///< best solo, final protocol
    double slowestSingleSeconds = 0.0;
    bool beatsSlowest = false;  ///< race wall < slowest solo search
    bool configNoWorse = false; ///< winner config ≥ best solo config
};

double
rate(std::size_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv, 300);
    support::CommandLine cl(argc, argv);
    std::string jsonPath =
        cl.getString("json", "BENCH_memo_cache.json");

    // Kernels with enough search space that a solo campaign takes
    // meaningful wall-clock time; on tiny spaces (e.g. iccg, TC = 2)
    // every strategy finishes in single-digit milliseconds and the
    // portfolio-vs-solo wall comparison is decided by timer jitter.
    std::vector<std::string> names{"tridiag", "eos", "innerprod"};
    std::vector<std::string> strategies{"CB", "CM", "DD",
                                        "GA", "HR", "HC"};
    if (support::quickMode()) {
        names = {"tridiag"};
        strategies = {"CB", "DD", "GA"};
    }

    namespace fs = std::filesystem;
    fs::path storeRoot =
        fs::temp_directory_path() / "hpcmixp_bench_memo_cache";
    fs::remove_all(storeRoot);

    std::vector<MemoRun> runs;
    std::vector<PortfolioRun> portfolios;
    support::Table table({"benchmark", "strategy", "EV cold",
                          "ev/s cold", "EV warm", "memo", "q/s warm",
                          "speedup"});

    for (const std::string& name : names) {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(name);
        core::BenchmarkTuner tuner(*benchmark, options.tuner);

        // Solo cold/warm pairs, one private store per strategy so no
        // strategy inherits another's published evaluations.
        double slowestSingle = 0.0;
        double bestSingleFinal = 1.0;
        search::Config bestSingleConfig;
        for (const std::string& code : strategies) {
            fs::path dir = storeRoot / name / code;
            MemoRun run;
            run.benchmark = name;
            run.strategy = code;

            tuner.setMemoStore(
                std::make_shared<search::MemoStore>(dir.string()));
            core::TuneOutcome cold = tuner.tune(code);
            run.evCold = cold.search.evaluated;
            run.coldSeconds = cold.search.searchSeconds;
            run.coldEvalsPerSec = rate(run.evCold, run.coldSeconds);
            run.speedup = cold.finalSpeedup;

            // Reopen the store from disk, as a later process would.
            tuner.setMemoStore(
                std::make_shared<search::MemoStore>(dir.string()));
            core::TuneOutcome warm = tuner.tune(code);
            run.evWarm = warm.search.evaluated;
            run.warmMemoHits = warm.search.memoHits;
            run.warmSeconds = warm.search.searchSeconds;
            run.warmQueriesPerSec =
                rate(run.warmMemoHits + run.evWarm, run.warmSeconds);

            slowestSingle =
                std::max(slowestSingle, run.coldSeconds);
            if (cold.finalSpeedup > bestSingleFinal) {
                bestSingleFinal = cold.finalSpeedup;
                bestSingleConfig = cold.clusterConfig;
            }
            runs.push_back(run);
            table.addRow(
                {name, code,
                 support::Table::cell(static_cast<long>(run.evCold)),
                 support::Table::cell(run.coldEvalsPerSec, 1),
                 support::Table::cell(static_cast<long>(run.evWarm)),
                 support::Table::cell(
                     static_cast<long>(run.warmMemoHits)),
                 support::Table::cell(run.warmQueriesPerSec, 1),
                 support::Table::cell(run.speedup, 2)});
        }

        // Best-at-budget portfolio: all strategies run to completion
        // concurrently against one shared cold store, so every
        // execution any entrant performs is a memo hit for the rest.
        // The quality claim comes from this mode, judged by the final
        // serial protocol — speedups measured *during* the race are
        // contention-inflated and only rank configs against each
        // other.
        fs::path bestDir = storeRoot / name / "portfolio-best";
        tuner.setMemoStore(
            std::make_shared<search::MemoStore>(bestDir.string()));
        core::PortfolioOutcome best = tuner.tunePortfolio(
            strategies, search::PortfolioMode::Best);

        // First-to-finish portfolio on another cold store: the
        // latency claim.
        fs::path raceDir = storeRoot / name / "portfolio-race";
        tuner.setMemoStore(
            std::make_shared<search::MemoStore>(raceDir.string()));
        core::PortfolioOutcome race = tuner.tunePortfolio(
            strategies, search::PortfolioMode::Race);

        PortfolioRun pf;
        pf.benchmark = name;
        pf.winner = best.winnerCode;
        pf.bestWallSeconds = best.portfolio.wallSeconds;
        pf.raceWallSeconds = race.portfolio.wallSeconds;
        pf.winnerSpeedup = best.finalSpeedup;
        pf.bestSingleSpeedup = bestSingleFinal;
        pf.slowestSingleSeconds = slowestSingle;
        pf.beatsSlowest = pf.raceWallSeconds < slowestSingle;
        // "No worse": the same configuration wins outright. Different
        // configurations are judged on a *paired* re-measurement —
        // the solo number above is the max over six separate sessions,
        // which timing noise inflates, so comparing it against the
        // portfolio's single session would be biased. Back-to-back
        // final-protocol runs of both configs put them on one clock.
        pf.configNoWorse =
            best.clusterConfig == bestSingleConfig;
        if (!pf.configNoWorse) {
            search::Evaluation winnerEval =
                tuner.finalMeasure(best.clusterConfig);
            search::Evaluation soloEval =
                tuner.finalMeasure(bestSingleConfig);
            pf.winnerSpeedup = winnerEval.speedup;
            pf.bestSingleSpeedup = soloEval.speedup;
            pf.configNoWorse =
                pf.winnerSpeedup >= 0.95 * pf.bestSingleSpeedup;
        }
        portfolios.push_back(pf);
    }

    std::cout << "Memo-cache cold/warm campaigns (budget "
              << options.tuner.budget.maxEvaluations << ")\n";
    benchutil::emit(table, options);

    support::Table pfTable({"benchmark", "winner", "best wall s",
                            "race wall s", "slowest solo s", "beats",
                            "speedup", "best solo", "no worse"});
    for (const PortfolioRun& pf : portfolios)
        pfTable.addRow(
            {pf.benchmark, pf.winner,
             support::Table::cell(pf.bestWallSeconds, 3),
             support::Table::cell(pf.raceWallSeconds, 3),
             support::Table::cell(pf.slowestSingleSeconds, 3),
             pf.beatsSlowest ? "yes" : "NO",
             support::Table::cell(pf.winnerSpeedup, 2),
             support::Table::cell(pf.bestSingleSpeedup, 2),
             pf.configNoWorse ? "yes" : "NO"});
    std::cout << "\nPortfolio race vs solo strategies\n";
    benchutil::emit(pfTable, options);

    using support::json::Value;
    Value doc = Value::object();
    doc.set("budget",
            Value::number(static_cast<double>(
                options.tuner.budget.maxEvaluations)));
    Value rows = Value::array();
    for (const MemoRun& run : runs) {
        Value row = Value::object();
        row.set("benchmark", Value::string(run.benchmark));
        row.set("strategy", Value::string(run.strategy));
        row.set("ev_cold",
                Value::number(static_cast<double>(run.evCold)));
        row.set("cold_seconds", Value::number(run.coldSeconds));
        row.set("cold_evals_per_sec",
                Value::number(run.coldEvalsPerSec));
        row.set("ev_warm",
                Value::number(static_cast<double>(run.evWarm)));
        row.set("warm_memo_hits",
                Value::number(static_cast<double>(run.warmMemoHits)));
        row.set("warm_seconds", Value::number(run.warmSeconds));
        row.set("warm_queries_per_sec",
                Value::number(run.warmQueriesPerSec));
        row.set("speedup", Value::number(run.speedup));
        rows.push(std::move(row));
    }
    doc.set("strategies", std::move(rows));
    Value pfRows = Value::array();
    for (const PortfolioRun& pf : portfolios) {
        Value row = Value::object();
        row.set("benchmark", Value::string(pf.benchmark));
        row.set("winner", Value::string(pf.winner));
        row.set("best_wall_seconds",
                Value::number(pf.bestWallSeconds));
        row.set("race_wall_seconds",
                Value::number(pf.raceWallSeconds));
        row.set("slowest_single_seconds",
                Value::number(pf.slowestSingleSeconds));
        row.set("beats_slowest", Value::boolean(pf.beatsSlowest));
        row.set("winner_speedup", Value::number(pf.winnerSpeedup));
        row.set("best_single_speedup",
                Value::number(pf.bestSingleSpeedup));
        row.set("config_no_worse", Value::boolean(pf.configNoWorse));
        pfRows.push(std::move(row));
    }
    doc.set("portfolio", std::move(pfRows));
    std::ofstream out(jsonPath);
    if (!out)
        support::fatal("cannot open --json output file");
    out << doc.dump(2) << '\n';

    fs::remove_all(storeRoot);
    return 0;
}
