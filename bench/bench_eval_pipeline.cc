/**
 * @file
 * Microbenchmark: evaluation-pipeline throughput, seed path vs the
 * prepare/execute split.
 *
 * One "evaluation" reproduces what the tuner does per candidate
 * configuration at --reps timing repetitions:
 *
 *   seed path      one untimed verification run plus --reps timed
 *                  runs, each a full run — precision-map resolution,
 *                  input conversion, output allocation, kernel.
 *   prepare/exec   prepare once (cached input views), then --reps
 *                  pure executes against a reusable per-thread
 *                  workspace; the verification output is the first
 *                  timed rep.
 *
 * Reports evaluations/sec for both paths, serial and at 4 evaluation
 * threads sharing one benchmark instance (the --search-jobs shape),
 * and writes the numbers to BENCH_eval_pipeline.json.
 *
 * Extra flag beyond the common set:
 *   --window S   seconds of measurement per cell (default 0.4)
 */

#include <atomic>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "benchmarks/registry.h"
#include "runtime/workspace.h"
#include "support/json.h"
#include "support/timer.h"
#include "verify/comparator.h"

namespace {

using namespace hpcmixp;
using benchmarks::Benchmark;
using benchmarks::PrecisionMap;
using benchmarks::PrepareOptions;
using benchmarks::RunOutput;
using benchmarks::RunPlan;
using runtime::RunWorkspace;
namespace json = support::json;

/** The suite's fastest kernels: per-eval overhead matters most here. */
const char* kSmallKernels[] = {"eos", "hydro-1d", "banded-lin-eq",
                               "diff-predictor", "gen-lin-recur",
                               "innerprod"};

/** Alternating single/double assignment over the sorted bind keys. */
PrecisionMap
mixedMap(const Benchmark& bench)
{
    std::set<std::string> keys;
    const auto& program = bench.programModel();
    for (model::VarId v : program.realVariables()) {
        const auto& var = program.variable(v);
        if (!var.bindKey.empty())
            keys.insert(var.bindKey);
    }
    PrecisionMap pm;
    std::size_t i = 0;
    for (const std::string& k : keys)
        if (i++ % 2 == 0)
            pm.set(k, runtime::Precision::Float32);
    return pm;
}

/** Seed protocol: verify run + reps timed runs, all fully fresh. */
void
seedEvaluation(const Benchmark& bench, const PrecisionMap& pm,
               const verify::OutputComparator& comparator,
               std::span<const double> reference, std::size_t reps)
{
    PrepareOptions uncached;
    uncached.reuseInputCache = false;
    {
        RunWorkspace ws;
        RunPlan plan = bench.prepare(pm, uncached);
        RunOutput output = bench.execute(plan, ws);
        (void)comparator.verify(reference, output.values);
    }
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t i = 0; i < reps; ++i) {
        support::WallTimer timer;
        RunWorkspace ws;
        RunPlan plan = bench.prepare(pm, uncached);
        (void)bench.execute(plan, ws);
        samples.push_back(timer.seconds());
    }
    (void)support::trimmedMean(std::move(samples));
}

/** New protocol: prepare once, reps executes, verify the first rep. */
void
pipelineEvaluation(const Benchmark& bench, const PrecisionMap& pm,
                   const verify::OutputComparator& comparator,
                   std::span<const double> reference, std::size_t reps,
                   RunWorkspace& ws)
{
    RunPlan plan = bench.prepare(pm);
    std::vector<double> samples;
    samples.reserve(reps);
    RunOutput first;
    for (std::size_t i = 0; i < reps; ++i) {
        support::WallTimer timer;
        RunOutput output = bench.execute(plan, ws);
        samples.push_back(timer.seconds());
        if (i == 0)
            first = std::move(output);
    }
    (void)comparator.verify(reference, first.values);
    (void)support::trimmedMean(std::move(samples));
}

/** Evaluations/sec of @p evaluation over @p seconds of wall clock. */
template <class Fn>
double
throughput(double seconds, Fn&& evaluation)
{
    // Warm caches (and, for the pipeline path, the input conversions).
    evaluation();
    support::WallTimer timer;
    std::size_t evals = 0;
    do {
        evaluation();
        ++evals;
    } while (timer.seconds() < seconds);
    return static_cast<double>(evals) / timer.seconds();
}

/** Same measurement with @p jobs threads sharing the benchmark. */
template <class Fn>
double
throughputParallel(double seconds, int jobs, Fn&& evaluation)
{
    std::atomic<std::size_t> evals{0};
    support::WallTimer timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
        threads.emplace_back([&] {
            evaluation();  // per-thread warm-up, untimed share
            do {
                evaluation();
                evals.fetch_add(1, std::memory_order_relaxed);
            } while (timer.seconds() < seconds);
        });
    }
    for (std::thread& th : threads)
        th.join();
    return static_cast<double>(evals.load()) / timer.seconds();
}

} // namespace

int
main(int argc, char** argv)
{
    benchutil::BenchOptions options = benchutil::parseOptions(argc, argv);
    support::CommandLine cl(argc, argv);
    double window = cl.getDouble("window",
                                 support::quickMode() ? 0.05 : 0.4);
    constexpr int kJobs = 4;
    // reps = 1 isolates the protocol win (two full runs collapse to
    // one pure execute); the configured default (3) shows the mixed
    // effect once kernel time amortizes the saved setup.
    const std::size_t repsList[] = {1, options.tuner.searchReps};

    support::Table table({"kernel", "reps", "serial-seed/s",
                          "serial-pipe/s", "serial-x", "jobs4-seed/s",
                          "jobs4-pipe/s", "jobs4-x"});
    json::Value doc = json::Value::object();
    doc.set("bench", json::Value::string("eval_pipeline"));
    doc.set("jobs", json::Value::number(kJobs));
    json::Value rows = json::Value::array();

    for (const char* name : kSmallKernels) {
        auto bench = benchmarks::BenchmarkRegistry::instance().create(name);
        PrecisionMap pm = mixedMap(*bench);
        PrecisionMap allDouble;
        RunOutput reference = bench->run(allDouble);
        verify::OutputComparator comparator("RMSE", 1e6);

        for (std::size_t reps : repsList) {
            auto seedEval = [&] {
                seedEvaluation(*bench, pm, comparator,
                               reference.values, reps);
            };
            auto pipeEval = [&] {
                thread_local RunWorkspace workspace;
                pipelineEvaluation(*bench, pm, comparator,
                                   reference.values, reps, workspace);
            };

            double serialSeed = throughput(window, seedEval);
            double serialPipe = throughput(window, pipeEval);
            double jobsSeed =
                throughputParallel(window, kJobs, seedEval);
            double jobsPipe =
                throughputParallel(window, kJobs, pipeEval);

            table.addRow(
                {name, support::Table::cell(static_cast<long>(reps)),
                 support::Table::cell(serialSeed, 1),
                 support::Table::cell(serialPipe, 1),
                 support::Table::cell(serialPipe / serialSeed, 2),
                 support::Table::cell(jobsSeed, 1),
                 support::Table::cell(jobsPipe, 1),
                 support::Table::cell(jobsPipe / jobsSeed, 2)});

            json::Value row = json::Value::object();
            row.set("kernel", json::Value::string(name));
            row.set("reps",
                    json::Value::number(static_cast<double>(reps)));
            row.set("serial_seed_evals_per_sec",
                    json::Value::number(serialSeed));
            row.set("serial_pipeline_evals_per_sec",
                    json::Value::number(serialPipe));
            row.set("serial_speedup",
                    json::Value::number(serialPipe / serialSeed));
            row.set("jobs4_seed_evals_per_sec",
                    json::Value::number(jobsSeed));
            row.set("jobs4_pipeline_evals_per_sec",
                    json::Value::number(jobsPipe));
            row.set("jobs4_speedup",
                    json::Value::number(jobsPipe / jobsSeed));
            rows.push(std::move(row));
        }
    }
    doc.set("kernels", std::move(rows));

    benchutil::emit(table, options);
    std::ofstream out("BENCH_eval_pipeline.json");
    out << doc.dump(2) << "\n";
    std::cout << "wrote BENCH_eval_pipeline.json\n";
    return 0;
}
