/**
 * @file
 * Regenerates **Table V**: evaluation of the applications under the
 * five scalable algorithms (CM, DD, HR, HC, GA — the paper excludes
 * brute-force CB at application scale) at quality thresholds 1e-3,
 * 1e-6 and 1e-8. Reports Speedup, Evaluated Configurations and
 * Quality per algorithm; searches that exhaust the budget (the
 * paper's 24-hour limit) are marked "-", like the gray boxes in the
 * paper.
 *
 * Expected shape: at 1e-3 most algorithms finish quickly with small EV
 * (the whole-program conversion passes); CM runs out of budget on the
 * variable-rich applications; DD's EV grows sharply as the threshold
 * tightens while GA's stays flat; HR struggles at 1e-8.
 */

#include <map>
#include <vector>

#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);

    const double thresholds[] = {1e-3, 1e-6, 1e-8};
    const char* algorithms[] = {"CM", "DD", "HR", "HC", "GA"};
    auto& registry = benchmarks::BenchmarkRegistry::instance();
    auto apps = registry.applicationNames();

    struct Cell {
        double speedup = 1.0;
        std::size_t evaluated = 0;
        std::size_t compileFails = 0;
        double quality = 0.0;
        bool timedOut = false;
    };

    for (double threshold : thresholds) {
        std::map<std::string, std::map<std::string, Cell>> results;
        for (const auto& name : apps) {
            for (const char* algorithm : algorithms) {
                auto bench = registry.create(name);
                core::TunerOptions tunerOptions = options.tuner;
                tunerOptions.threshold = threshold;
                core::BenchmarkTuner tuner(*bench, tunerOptions);
                auto outcome = tuner.tune(algorithm);
                Cell cell;
                cell.speedup = outcome.finalSpeedup;
                cell.evaluated = outcome.search.evaluated;
                cell.compileFails = outcome.search.compileFailures;
                cell.quality = outcome.finalQualityLoss;
                cell.timedOut = outcome.search.timedOut;
                results[name][algorithm] = cell;
            }
        }

        auto printBlock = [&](const std::string& title, auto getter) {
            std::cout << "\nTable V — " << title << " (threshold "
                      << support::sciCompact(threshold) << ")\n";
            std::vector<std::string> headers{"application"};
            headers.insert(headers.end(), std::begin(algorithms),
                           std::end(algorithms));
            support::Table table(headers);
            for (const auto& name : apps) {
                std::vector<std::string> row{name};
                for (const char* algorithm : algorithms) {
                    const Cell& cell = results[name][algorithm];
                    // Budget-exhausted searches without a result are
                    // the paper's empty gray boxes.
                    if (cell.timedOut && cell.speedup <= 1.0)
                        row.push_back("-");
                    else
                        row.push_back(getter(cell));
                }
                table.addRow(row);
            }
            benchutil::emit(table, options);
        };

        printBlock("Speedup", [](const Cell& c) {
            return support::Table::cell(c.speedup, 2);
        });
        printBlock("Evaluated Configs", [](const Cell& c) {
            std::string s =
                support::Table::cell(static_cast<long>(c.evaluated));
            if (c.compileFails > 0)
                s += " (+" + std::to_string(c.compileFails) + "cf)";
            return c.timedOut ? s + "*" : s;
        });
        printBlock("Quality", [](const Cell& c) {
            return support::Table::cellSci(c.quality);
        });
    }
    std::cout << "\n(- = no result within budget; * = truncated; +Ncf"
                 " = N compile failures)\n";
    return 0;
}
