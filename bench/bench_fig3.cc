/**
 * @file
 * Regenerates **Figure 3**: scatter of achieved speedup versus the
 * number of configurations the search evaluated (a proxy for analysis
 * time), across every application x algorithm x threshold search
 * scenario.
 *
 * Expected shape: the bulk of scenarios lands in the 1.0-1.2x speedup
 * band regardless of how many configurations were tested; only a
 * handful of scenarios (Hotspot, LavaMD at relaxed thresholds) reach
 * higher speedups.
 */

#include <vector>

#include "bench/bench_util.h"
#include "support/stats.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);

    const double thresholds[] = {1e-3, 1e-6, 1e-8};
    const char* algorithms[] = {"CM", "DD", "HR", "HC", "GA"};
    auto& registry = benchmarks::BenchmarkRegistry::instance();

    std::cout << "Figure 3: speedup vs configurations tested"
                 " (all search scenarios)\n";
    support::Table table({"application", "algorithm", "threshold",
                          "evaluated", "search-seconds", "speedup"});
    std::size_t band = 0;
    std::size_t total = 0;
    std::vector<double> speedups;
    for (const auto& name : registry.applicationNames()) {
        for (const char* algorithm : algorithms) {
            for (double threshold : thresholds) {
                auto bench = registry.create(name);
                core::TunerOptions tunerOptions = options.tuner;
                tunerOptions.threshold = threshold;
                core::BenchmarkTuner tuner(*bench, tunerOptions);
                auto outcome = tuner.tune(algorithm);
                table.addRow(
                    {name, algorithm, support::sciCompact(threshold),
                     support::Table::cell(static_cast<long>(
                         outcome.search.evaluated)),
                     support::Table::cell(
                         outcome.search.searchSeconds, 2),
                     support::Table::cell(outcome.finalSpeedup, 2)});
                ++total;
                speedups.push_back(outcome.finalSpeedup);
                if (outcome.finalSpeedup >= 1.0 &&
                    outcome.finalSpeedup <= 1.2)
                    ++band;
            }
        }
    }
    benchutil::emit(table, options);
    auto stats = support::summarize(speedups);
    std::cout << "\nscenarios in the 1.0-1.2x band: " << band << "/"
              << total << "\n"
              << "speedup distribution: median "
              << support::Table::cell(stats.median, 2) << ", mean "
              << support::Table::cell(stats.mean, 2) << " +- "
              << support::Table::cell(stats.stddev, 2) << ", max "
              << support::Table::cell(stats.max, 2) << "\n";
    return 0;
}
