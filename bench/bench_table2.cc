/**
 * @file
 * Regenerates **Table II**: Total Variables (TV) and Total Clusters
 * (TC) identified by the Typeforge-analogue analysis for every kernel
 * and application in the suite.
 *
 * Expected shape (paper Section IV-A): kernels have single-digit TV
 * and very few clusters; CFD-style pointer-parameter-heavy apps
 * cluster strongly (TC << TV) while the scalar-heavy Blackscholes
 * barely clusters at all (TC ~= TV).
 */

#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);

    std::cout << "Table II: benchmark analysis complexity\n";
    support::Table table(
        {"benchmark", "kind", "TV", "TC", "reduction"});
    auto& registry = benchmarks::BenchmarkRegistry::instance();
    for (const auto& name : registry.names()) {
        auto bench = registry.create(name);
        auto row = typeforge::complexity(bench->programModel());
        double reduction =
            static_cast<double>(row.totalVariables) /
            static_cast<double>(row.totalClusters);
        table.addRow({name, bench->isKernel() ? "kernel" : "app",
                      support::Table::cell(
                          static_cast<long>(row.totalVariables)),
                      support::Table::cell(
                          static_cast<long>(row.totalClusters)),
                      support::Table::cell(reduction, 2)});
    }
    benchutil::emit(table, options);
    return 0;
}
