/**
 * @file
 * Measurement: worker-pool spawn amortization and work stealing
 * (DESIGN.md §15).
 *
 * Part 1 — spawn amortization. For each benchmark, runs the same
 * combinational (CB) campaign under --isolation=fork (one fork+reap
 * per evaluation) and --isolation=pool (persistent pre-forked workers
 * fed over shared-memory rings), and compares the per-evaluation
 * sandbox overhead: fork's spawn cost against pool's dispatch cost.
 * The headline check: pool dispatch stays at or under half the fork
 * spawn cost per evaluation.
 *
 * Part 2 — work stealing. Pushes a deliberately uneven-latency
 * synthetic batch through SearchContext::evaluateBatch under the
 * stealing scheduler and the non-stealing FIFO scheduler (static
 * round-robin dealing) at 4 worker threads, and compares batch
 * throughput. Per-item latency blocks (sleeps) rather than spins,
 * mirroring the sandboxed reality this pool exists for — the parent
 * thread waits on a child pidfd — so the comparison holds on any
 * core count. The headline check: with skewed per-item latencies,
 * stealing reaches at least 1.3x FIFO throughput (idle workers raid
 * a loaded sibling's deque instead of sleeping while the unluckiest
 * worker convoys through its dealt long jobs).
 *
 * Extra flag beyond the common set:
 *   --json F   write the full result document to F
 *              (default BENCH_worker_pool.json)
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "search/driver.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/timer.h"

namespace {

using namespace hpcmixp;

struct PoolRun {
    std::string benchmark;
    std::size_t evaluated = 0;
    double forkSpawnMs = 0.0;  ///< mean fork+reap overhead per eval
    double poolSpawnMs = 0.0;  ///< mean ring-dispatch overhead per eval
    double ratio = 0.0;        ///< pool / fork (lower is better)
    std::size_t poolForks = 0; ///< actual fork() calls under the pool
    bool evMatch = false;
};

/**
 * Synthetic uneven-latency problem for the stealing comparison: each
 * evaluation blocks for a seeded, config-determined interval — the
 * shape of a sandboxed evaluation, where the searcher thread sleeps
 * on the child's pidfd — while the reported values stay pure
 * functions of the configuration.
 */
class SkewedProblem final : public search::SearchProblem {
  public:
    explicit SkewedProblem(std::size_t sites) : sites_(sites) {}

    std::size_t siteCount() const override { return sites_; }

    search::Evaluation
    evaluate(const search::Config& config) override
    {
        support::Pcg32 rng(
            std::hash<std::string>{}(config.toString()));
        // Latencies spread over ~2 decades: most configs are cheap,
        // ~15% are ~70x the median — the shape that convoys a
        // non-stealing pool behind its unluckiest worker.
        std::uint32_t micros = 100 + rng.nextBounded(200);
        if (rng.chance(0.15))
            micros *= 70;
        std::this_thread::sleep_for(std::chrono::microseconds(micros));

        search::Evaluation eval;
        eval.speedup =
            1.0 + 0.01 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0 / eval.speedup;
        eval.status = search::EvalStatus::Pass;
        eval.qualityLoss = 0.0;
        return eval;
    }

  private:
    std::size_t sites_;
};

double
stealBatchSeconds(search::SearchContext::BatchScheduling mode,
                  std::size_t jobs, std::size_t batchItems,
                  std::size_t rounds, std::size_t& steals)
{
    SkewedProblem problem(16);
    search::SearchContext ctx(problem, {1000000000, 0.0},
                              search::ResiliencePolicy{});
    ctx.setSearchJobs(jobs);
    ctx.setBatchScheduling(mode);

    // Distinct configurations per round (evaluateBatch caches), all
    // derived from a fixed seed so both modes see identical batches.
    support::Pcg32 rng(20200908);
    support::WallTimer timer;
    for (std::size_t r = 0; r < rounds; ++r) {
        std::vector<search::Config> batch;
        batch.reserve(batchItems);
        for (std::size_t i = 0; i < batchItems; ++i) {
            search::Config cfg(16);
            for (std::size_t s = 0; s < 16; ++s)
                if (rng.chance(0.5))
                    cfg.set(s);
            batch.push_back(cfg);
        }
        (void)ctx.evaluateBatch(batch);
    }
    double seconds = timer.seconds();
    steals = ctx.stealCount();
    return seconds;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv, 300);
    support::CommandLine cl(argc, argv);
    std::string jsonPath =
        cl.getString("json", "BENCH_worker_pool.json");

    // ---- Part 1: spawn amortization, fork vs pool -------------------

    std::vector<std::string> names{"kmeans", "hotspot", "lavamd"};
    if (support::quickMode())
        names = {"kmeans"};

    support::Table table({"benchmark", "EV", "fork spawn ms",
                          "pool dispatch ms", "pool/fork", "pool forks",
                          "EV match"});
    std::vector<PoolRun> runs;

    for (const std::string& name : names) {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(name);

        PoolRun run;
        run.benchmark = name;

        core::TunerOptions forkOptions = options.tuner;
        forkOptions.isolation = support::IsolationMode::Fork;
        core::BenchmarkTuner forkTuner(*benchmark, forkOptions);
        core::TuneOutcome forked = forkTuner.tune("CB");

        core::TunerOptions poolOptions = options.tuner;
        poolOptions.isolation = support::IsolationMode::Pool;
        core::BenchmarkTuner poolTuner(*benchmark, poolOptions);
        core::TuneOutcome pooled = poolTuner.tune("CB");

        run.evaluated = forked.search.evaluated;
        run.forkSpawnMs =
            forkTuner.sandboxStats().spawnOverheadMeanSeconds * 1e3;
        run.poolSpawnMs =
            poolTuner.sandboxStats().spawnOverheadMeanSeconds * 1e3;
        run.ratio = run.forkSpawnMs > 0.0
                        ? run.poolSpawnMs / run.forkSpawnMs
                        : 0.0;
        run.poolForks = poolTuner.sandboxStats().forks;
        run.evMatch =
            pooled.search.evaluated == forked.search.evaluated;
        runs.push_back(run);

        table.addRow(
            {name,
             support::Table::cell(static_cast<long>(run.evaluated)),
             support::Table::cell(run.forkSpawnMs, 3),
             support::Table::cell(run.poolSpawnMs, 3),
             support::Table::cell(run.ratio, 3),
             support::Table::cell(static_cast<long>(run.poolForks)),
             run.evMatch ? "yes" : "NO"});
    }

    std::cout << "Worker-pool spawn amortization, CB campaigns (budget "
              << options.tuner.budget.maxEvaluations << ", reps "
              << options.tuner.searchReps << ")\n";
    benchutil::emit(table, options);

    // ---- Part 2: stealing vs FIFO on an uneven-latency batch --------

    const std::size_t jobs = 8;
    std::size_t batchItems = 64;
    std::size_t rounds = support::quickMode() ? 8 : 16;

    std::size_t fifoSteals = 0, stealSteals = 0;
    double fifoSeconds = stealBatchSeconds(
        search::SearchContext::BatchScheduling::Fifo, jobs, batchItems,
        rounds, fifoSteals);
    double stealSeconds = stealBatchSeconds(
        search::SearchContext::BatchScheduling::Steal, jobs, batchItems,
        rounds, stealSteals);
    double throughputRatio =
        stealSeconds > 0.0 ? fifoSeconds / stealSeconds : 0.0;

    support::Table stealTable(
        {"scheduler", "batch s", "steals", "vs FIFO"});
    stealTable.addRow({"fifo", support::Table::cell(fifoSeconds, 4),
                       support::Table::cell(
                           static_cast<long>(fifoSteals)),
                       "1.00"});
    stealTable.addRow({"steal", support::Table::cell(stealSeconds, 4),
                       support::Table::cell(
                           static_cast<long>(stealSteals)),
                       support::Table::cell(throughputRatio, 2)});
    std::cout << "\nStealing vs FIFO, " << rounds << " x " << batchItems
              << "-config skewed batches at " << jobs << " jobs\n";
    benchutil::emit(stealTable, options);

    // ---- JSON -------------------------------------------------------

    using support::json::Value;
    Value doc = Value::object();
    doc.set("budget",
            Value::number(static_cast<double>(
                options.tuner.budget.maxEvaluations)));
    doc.set("reps",
            Value::number(
                static_cast<double>(options.tuner.searchReps)));
    Value rows = Value::array();
    for (const PoolRun& run : runs) {
        Value row = Value::object();
        row.set("benchmark", Value::string(run.benchmark));
        row.set("evaluated",
                Value::number(static_cast<double>(run.evaluated)));
        row.set("fork_spawn_ms", Value::number(run.forkSpawnMs));
        row.set("pool_dispatch_ms", Value::number(run.poolSpawnMs));
        row.set("pool_over_fork", Value::number(run.ratio));
        row.set("pool_forks",
                Value::number(static_cast<double>(run.poolForks)));
        row.set("ev_match", Value::boolean(run.evMatch));
        rows.push(std::move(row));
    }
    doc.set("kernels", std::move(rows));

    Value steal = Value::object();
    steal.set("jobs", Value::number(static_cast<double>(jobs)));
    steal.set("rounds", Value::number(static_cast<double>(rounds)));
    steal.set("batch_items",
              Value::number(static_cast<double>(batchItems)));
    steal.set("fifo_seconds", Value::number(fifoSeconds));
    steal.set("steal_seconds", Value::number(stealSeconds));
    steal.set("steals", Value::number(static_cast<double>(stealSteals)));
    steal.set("throughput_ratio", Value::number(throughputRatio));
    doc.set("stealing", std::move(steal));

    std::ofstream out(jsonPath);
    if (!out)
        support::fatal("cannot open --json output file");
    out << doc.dump(2) << '\n';
    return 0;
}
