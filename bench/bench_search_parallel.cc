/**
 * @file
 * Microbenchmark: batch-parallel in-search evaluation scaling.
 *
 * Runs CB and GA over a synthetic problem whose per-evaluation cost is
 * a fixed sleep (standing in for waiting on a spawned compile+run
 * cycle — the dominant cost of a real campaign) and reports wall-clock
 * time and speedup at --search-jobs 1/2/4. The searches are
 * trajectory-identical at every worker count (see DESIGN.md §9), so
 * the column worth watching is purely the speedup: GA and CB batch a
 * whole generation / cardinality chunk at a time and should scale
 * near-linearly while evaluations dominate.
 *
 * Extra flag beyond the common set:
 *   --delay-us N   sleep per evaluation, microseconds (default 500)
 */

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "search/driver.h"
#include "support/rng.h"

namespace {

using namespace hpcmixp;
using search::Config;
using search::EvalStatus;
using search::Evaluation;

/**
 * Toxic-subset problem (as in the property tests) with a configurable
 * sleep per evaluation. Sleeping rather than spinning matches the real
 * cost profile: a campaign evaluation blocks on an external
 * compile+run, so workers overlap their waits — which is exactly the
 * latency batching hides.
 */
class SyntheticProblem : public search::SearchProblem {
  public:
    SyntheticProblem(std::size_t sites, std::uint64_t seed,
                     std::chrono::microseconds delay)
        : sites_(sites), toxic_(sites), delay_(delay)
    {
        support::Pcg32 rng(seed);
        for (std::size_t i = 0; i < sites; ++i)
            toxic_[i] = rng.chance(1.0 / 3.0);
    }

    std::size_t siteCount() const override { return sites_; }

    Evaluation
    evaluate(const Config& config) override
    {
        std::this_thread::sleep_for(delay_);
        Evaluation eval;
        eval.speedup =
            1.0 + 0.05 * static_cast<double>(config.count());
        eval.runtimeSeconds = 1.0 / eval.speedup;
        bool passes = true;
        for (std::size_t i = 0; i < sites_; ++i)
            if (config.test(i) && toxic_[i])
                passes = false;
        eval.status =
            passes ? EvalStatus::Pass : EvalStatus::QualityFail;
        eval.qualityLoss = eval.passed() ? 0.0 : 1.0;
        return eval;
    }

  private:
    std::size_t sites_;
    std::vector<bool> toxic_;
    std::chrono::microseconds delay_;
};

double
timedRun(const char* code, std::size_t sites, std::size_t jobs,
         std::chrono::microseconds delay,
         const search::SearchBudget& budget, std::size_t& evaluated)
{
    SyntheticProblem problem(sites, 42, delay);
    search::SearchRunOptions run;
    run.searchJobs = jobs;
    auto start = std::chrono::steady_clock::now();
    auto result = search::runSearch(problem, code, budget, run);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    evaluated = result.evaluated;
    return elapsed.count();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv, 400);
    support::CommandLine cl(argc, argv);
    auto delay = std::chrono::microseconds(
        cl.getLong("delay-us", support::quickMode() ? 200 : 500));
    // Big enough that CB's 2^n-1 space and GA's generations exceed the
    // evaluation budget; the budget itself caps the work.
    const std::size_t sites = 12;
    search::SearchBudget budget = options.tuner.budget;
    budget.maxSeconds = 0.0; // EV-bounded so runs are comparable

    std::cout << "Batch-parallel search scaling ("
              << budget.maxEvaluations << " EV budget, "
              << delay.count() << "us/evaluation)\n";
    support::Table table(
        {"strategy", "jobs", "evaluated", "seconds", "speedup"});
    for (const char* code : {"CB", "GA"}) {
        double serialSeconds = 0.0;
        for (std::size_t jobs : {1u, 2u, 4u}) {
            std::size_t evaluated = 0;
            double seconds = timedRun(code, sites, jobs, delay,
                                      budget, evaluated);
            if (jobs == 1)
                serialSeconds = seconds;
            table.addRow(
                {code,
                 support::Table::cell(static_cast<long>(jobs)),
                 support::Table::cell(static_cast<long>(evaluated)),
                 support::Table::cell(seconds, 3),
                 support::Table::cell(serialSeconds / seconds, 2)});
        }
    }
    benchutil::emit(table, options);
    return 0;
}
