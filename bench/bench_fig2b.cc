/**
 * @file
 * Regenerates **Figure 2b**: correlation between application analysis
 * complexity (total clusters) and the speedup obtained by DD and GA
 * at each quality threshold.
 *
 * Expected shape: both algorithms usually land on configurations with
 * similar execution times; DD's extra evaluations only occasionally
 * buy a slightly faster configuration than GA's.
 */

#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);

    const double thresholds[] = {1e-3, 1e-6, 1e-8};
    const char* algorithms[] = {"DD", "GA"};
    auto& registry = benchmarks::BenchmarkRegistry::instance();

    std::cout << "Figure 2b: clusters vs speedup (DD vs GA)\n";
    support::Table table({"application", "clusters", "threshold",
                          "algorithm", "speedup"});
    for (const auto& name : registry.applicationNames()) {
        for (double threshold : thresholds) {
            for (const char* algorithm : algorithms) {
                auto bench = registry.create(name);
                core::TunerOptions tunerOptions = options.tuner;
                tunerOptions.threshold = threshold;
                core::BenchmarkTuner tuner(*bench, tunerOptions);
                auto outcome = tuner.tune(algorithm);
                table.addRow(
                    {name,
                     support::Table::cell(
                         static_cast<long>(tuner.clusterCount())),
                     support::sciCompact(threshold), algorithm,
                     support::Table::cell(outcome.finalSpeedup, 2)});
            }
        }
    }
    benchutil::emit(table, options);
    return 0;
}
