/**
 * @file
 * google-benchmark microbenchmarks: native double-precision versus
 * all-single-precision throughput of every kernel and application in
 * the suite. These are the raw runtime samples behind the speedup
 * columns of Tables III-V.
 */

#include <benchmark/benchmark.h>

#include "benchmarks/benchmark.h"
#include "benchmarks/registry.h"

namespace {

using hpcmixp::benchmarks::Benchmark;
using hpcmixp::benchmarks::BenchmarkRegistry;
using hpcmixp::benchmarks::PrecisionMap;
using hpcmixp::runtime::Precision;

/** Lower every bound knob of a benchmark to single precision. */
PrecisionMap
allSingle(const Benchmark& bench)
{
    PrecisionMap pm;
    for (const auto& var : bench.programModel().variables())
        if (!var.bindKey.empty())
            pm.set(var.bindKey, Precision::Float32);
    return pm;
}

void
runDouble(benchmark::State& state, const std::string& name)
{
    auto bench = BenchmarkRegistry::instance().create(name);
    PrecisionMap pm;
    for (auto _ : state) {
        auto out = bench->run(pm);
        benchmark::DoNotOptimize(out.values.data());
    }
}

void
runSingle(benchmark::State& state, const std::string& name)
{
    auto bench = BenchmarkRegistry::instance().create(name);
    PrecisionMap pm = allSingle(*bench);
    for (auto _ : state) {
        auto out = bench->run(pm);
        benchmark::DoNotOptimize(out.values.data());
    }
}

const bool kRegistered = [] {
    for (const auto& name : BenchmarkRegistry::instance().names()) {
        benchmark::RegisterBenchmark((name + "/double").c_str(),
                                     runDouble, name)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark((name + "/single").c_str(),
                                     runSingle, name)
            ->Unit(benchmark::kMillisecond);
    }
    return true;
}();

} // namespace

BENCHMARK_MAIN();
