/**
 * @file
 * Regenerates **Table III**: evaluation of the kernel codes under all
 * six search algorithms at quality threshold 1e-8. For each kernel x
 * algorithm it reports Quality (units of 1e-9, as in the paper),
 * Evaluated Configurations (EV) and Speedup.
 *
 * Expected shape: most algorithms converge to the same configuration
 * (identical quality columns); the hierarchical variants (HR/HC)
 * sometimes land on suboptimal configurations and examine more
 * configurations because they work on individual variables; GA's EV
 * is bounded by its population x generations and deduplicates
 * naturally on tiny cluster spaces.
 */

#include <map>
#include <vector>

#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);
    options.tuner.threshold = 1e-8;

    const char* algorithms[] = {"CB", "CM", "DD", "HR", "HC", "GA"};
    auto& registry = benchmarks::BenchmarkRegistry::instance();
    auto kernels = registry.kernelNames();

    struct Cell {
        double quality = 0.0;
        std::size_t evaluated = 0;
        double speedup = 1.0;
        bool timedOut = false;
    };
    std::map<std::string, std::map<std::string, Cell>> results;

    for (const auto& name : kernels) {
        for (const char* algorithm : algorithms) {
            auto bench = registry.create(name);
            core::BenchmarkTuner tuner(*bench, options.tuner);
            auto outcome = tuner.tune(algorithm);
            Cell cell;
            cell.quality = outcome.finalQualityLoss;
            cell.evaluated = outcome.search.evaluated;
            cell.speedup = outcome.finalSpeedup;
            cell.timedOut = outcome.search.timedOut;
            results[name][algorithm] = cell;
        }
    }

    auto printBlock = [&](const std::string& title, auto getter) {
        std::cout << "\nTable III — " << title
                  << " (threshold 1e-8)\n";
        std::vector<std::string> headers{"kernel"};
        headers.insert(headers.end(), std::begin(algorithms),
                       std::end(algorithms));
        support::Table table(headers);
        for (const auto& name : kernels) {
            std::vector<std::string> row{name};
            for (const char* algorithm : algorithms)
                row.push_back(getter(results[name][algorithm]));
            table.addRow(row);
        }
        benchutil::emit(table, options);
    };

    printBlock("Quality (1e-9 units)", [](const Cell& c) {
        return benchutil::qualityNano(c.quality);
    });
    printBlock("Evaluated Configs", [](const Cell& c) {
        std::string s =
            support::Table::cell(static_cast<long>(c.evaluated));
        return c.timedOut ? s + "*" : s;
    });
    printBlock("Speedup", [](const Cell& c) {
        return support::Table::cell(c.speedup, 2);
    });
    std::cout << "\n(* = search truncated by the evaluation budget)\n";
    return 0;
}
