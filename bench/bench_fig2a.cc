/**
 * @file
 * Regenerates **Figure 2a**: correlation between application analysis
 * complexity (total clusters, x-axis) and the number of configurations
 * the search evaluated (y-axis), for DD and GA at each quality
 * threshold. Emitted as one series table (or CSV with --csv) suitable
 * for plotting.
 *
 * Expected shape: GA's evaluated count stays nearly flat across
 * complexities and thresholds (its termination criterion bounds it);
 * DD's count rises with complexity and tightening thresholds, except
 * where the whole application converts trivially.
 */

#include "bench/bench_util.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);

    const double thresholds[] = {1e-3, 1e-6, 1e-8};
    const char* algorithms[] = {"DD", "GA"};
    auto& registry = benchmarks::BenchmarkRegistry::instance();

    std::cout << "Figure 2a: clusters vs evaluated configurations"
                 " (DD vs GA)\n";
    support::Table table({"application", "clusters", "threshold",
                          "algorithm", "evaluated"});
    for (const auto& name : registry.applicationNames()) {
        for (double threshold : thresholds) {
            for (const char* algorithm : algorithms) {
                auto bench = registry.create(name);
                core::TunerOptions tunerOptions = options.tuner;
                tunerOptions.threshold = threshold;
                core::BenchmarkTuner tuner(*bench, tunerOptions);
                auto outcome = tuner.tune(algorithm);
                table.addRow(
                    {name,
                     support::Table::cell(
                         static_cast<long>(tuner.clusterCount())),
                     support::sciCompact(threshold), algorithm,
                     support::Table::cell(static_cast<long>(
                         outcome.search.evaluated))});
            }
        }
    }
    benchutil::emit(table, options);
    return 0;
}
