/**
 * @file
 * Measurement: the cost of fork isolation (DESIGN.md §13).
 *
 * For each benchmark, runs the same combinational (CB) campaign twice
 * from identical options — once in-process (--isolation=none) and
 * once with every search evaluation forked (--isolation=fork) — and
 * compares evaluation throughput. Both runs are fault-free, so they
 * execute the same configuration set (CB's exploration order is
 * fixed; the reported winner may differ by timing noise, exactly as
 * between two in-process runs) and the wall difference is purely the
 * fork+arena+reap machinery. The headline check: at reps >= 3 on
 * application benchmarks, sandbox overhead stays under 10% — the
 * fork tax is paid once per evaluation while the program runs reps
 * times.
 *
 * Extra flag beyond the common set:
 *   --json F   write the full result document to F
 *              (default BENCH_sandbox.json)
 */

#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;

struct SandboxRun {
    std::string benchmark;
    std::size_t evaluated = 0;
    double noneSeconds = 0.0;
    double forkSeconds = 0.0;
    double noneEvalsPerSec = 0.0;
    double forkEvalsPerSec = 0.0;
    double overheadPct = 0.0;
    double spawnMeanMs = 0.0;
    bool evMatch = false; ///< both modes executed the same EV count
};

double
rate(std::size_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv, 300);
    support::CommandLine cl(argc, argv);
    std::string jsonPath = cl.getString("json", "BENCH_sandbox.json");

    // Application benchmarks, not microkernels: per-evaluation
    // runtime must dwarf the ~ms fork tax for the overhead number to
    // mean anything — a kernel finishing in 2 ms under-reps would
    // show 100% overhead for 2 ms of absolute cost.
    std::vector<std::string> names{"kmeans", "hotspot", "lavamd"};
    if (support::quickMode())
        names = {"kmeans"};

    support::Table table({"benchmark", "EV", "ev/s none", "ev/s fork",
                          "overhead %", "spawn ms", "EV match"});
    std::vector<SandboxRun> runs;

    for (const std::string& name : names) {
        auto benchmark =
            benchmarks::BenchmarkRegistry::instance().create(name);

        SandboxRun run;
        run.benchmark = name;

        // One tuner per mode: isolation is fixed at construction.
        // Both campaigns are clean, so they walk the same trajectory
        // and the wall-clock delta isolates the sandbox machinery.
        core::TunerOptions noneOptions = options.tuner;
        noneOptions.isolation = support::IsolationMode::None;
        core::BenchmarkTuner noneTuner(*benchmark, noneOptions);
        core::TuneOutcome none = noneTuner.tune("CB");

        core::TunerOptions forkOptions = options.tuner;
        forkOptions.isolation = support::IsolationMode::Fork;
        core::BenchmarkTuner forkTuner(*benchmark, forkOptions);
        core::TuneOutcome forked = forkTuner.tune("CB");

        run.evaluated = none.search.evaluated;
        run.noneSeconds = none.search.searchSeconds;
        run.forkSeconds = forked.search.searchSeconds;
        run.noneEvalsPerSec =
            rate(none.search.evaluated, run.noneSeconds);
        run.forkEvalsPerSec =
            rate(forked.search.evaluated, run.forkSeconds);
        run.overheadPct =
            run.noneSeconds > 0.0
                ? (run.forkSeconds / run.noneSeconds - 1.0) * 100.0
                : 0.0;
        run.spawnMeanMs =
            forkTuner.sandboxStats().spawnOverheadMeanSeconds * 1e3;
        run.evMatch =
            forked.search.evaluated == none.search.evaluated;
        runs.push_back(run);

        table.addRow(
            {name,
             support::Table::cell(static_cast<long>(run.evaluated)),
             support::Table::cell(run.noneEvalsPerSec, 1),
             support::Table::cell(run.forkEvalsPerSec, 1),
             support::Table::cell(run.overheadPct, 1),
             support::Table::cell(run.spawnMeanMs, 3),
             run.evMatch ? "yes" : "NO"});
    }

    std::cout << "Fork-isolation overhead, CB campaigns (budget "
              << options.tuner.budget.maxEvaluations << ", reps "
              << options.tuner.searchReps << ")\n";
    benchutil::emit(table, options);

    using support::json::Value;
    Value doc = Value::object();
    doc.set("budget",
            Value::number(static_cast<double>(
                options.tuner.budget.maxEvaluations)));
    doc.set("reps",
            Value::number(
                static_cast<double>(options.tuner.searchReps)));
    Value rows = Value::array();
    for (const SandboxRun& run : runs) {
        Value row = Value::object();
        row.set("benchmark", Value::string(run.benchmark));
        row.set("evaluated",
                Value::number(static_cast<double>(run.evaluated)));
        row.set("none_seconds", Value::number(run.noneSeconds));
        row.set("fork_seconds", Value::number(run.forkSeconds));
        row.set("none_evals_per_sec",
                Value::number(run.noneEvalsPerSec));
        row.set("fork_evals_per_sec",
                Value::number(run.forkEvalsPerSec));
        row.set("overhead_pct", Value::number(run.overheadPct));
        row.set("spawn_mean_ms", Value::number(run.spawnMeanMs));
        row.set("ev_match", Value::boolean(run.evMatch));
        rows.push(std::move(row));
    }
    doc.set("kernels", std::move(rows));
    std::ofstream out(jsonPath);
    if (!out)
        support::fatal("cannot open --json output file");
    out << doc.dump(2) << '\n';
    return 0;
}
