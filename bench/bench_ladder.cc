/**
 * @file
 * Measurement: what the half/bfloat16 ladder rungs buy, and what
 * iterative refinement recovers.
 *
 * For each benchmark and each precision ladder (two-tier baseline,
 * then three-rung with binary16 and with bfloat16), tunes the
 * benchmark with and without --refine and reports the winning
 * configuration, the deepest rung it uses, how many clusters sit
 * below float, and the speedup/quality of the winner. The headline
 * row is tridiag at the half rung: unrefined the 16-bit recurrence
 * fails the quality gate, with refinement on the search lands a
 * passing half-bearing configuration.
 *
 * Extra flag beyond the common set:
 *   --json F   write the full result document to F
 *              (default BENCH_ladder.json)
 */

#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "support/json.h"
#include "support/logging.h"

namespace {

using namespace hpcmixp;

struct LadderRun {
    std::string benchmark;
    std::string ladder;
    std::string strategy;
    bool refine = false;
    std::size_t ev = 0;
    std::string winner;
    std::string deepest; ///< precision name of the deepest rung used
    std::size_t sub32 = 0; ///< clusters below float (level >= 2)
    double speedup = 1.0;
    double quality = 0.0;
    bool improved = false;
    /// Probe of the all-deepest-rung configuration under this
    /// campaign's settings: does e.g. all-half pass the quality gate?
    /// (The speedup-ranked winner hides this — emulated 16-bit never
    /// wins on time, but the recovery claim is about the gate.)
    bool deepPass = false;
    double deepQuality = 0.0;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv, 300);
    support::CommandLine cl(argc, argv);
    std::string jsonPath = cl.getString("json", "BENCH_ladder.json");

    std::vector<std::string> names{"tridiag", "innerprod",
                                   "banded-lin-eq"};
    std::vector<std::string> strategies{"CB", "DD"};
    if (support::quickMode()) {
        names = {"tridiag"};
        strategies = {"DD"};
    }
    const std::vector<std::string> ladders{
        "double,float", "double,float,half", "double,float,bf16"};

    std::vector<LadderRun> runs;
    support::Table table({"benchmark", "ladder", "strategy", "IR",
                          "EV", "winner", "deepest", "sub32",
                          "speedup", "quality", "deep-cfg",
                          "deep-q"});

    for (const std::string& name : names) {
        for (const std::string& spec : ladders) {
            for (bool refine : {false, true}) {
                // Refinement changes nothing on the two-tier ladder
                // campaigns measured elsewhere; skip the duplicate.
                if (refine && spec == "double,float")
                    continue;
                core::TunerOptions tunerOptions = options.tuner;
                tunerOptions.ladder =
                    runtime::PrecisionLadder::parse(spec);
                tunerOptions.refine = refine;
                auto benchmark =
                    benchmarks::BenchmarkRegistry::instance().create(
                        name);
                core::BenchmarkTuner tuner(*benchmark, tunerOptions);

                // Probe the all-deepest-rung configuration once per
                // campaign: the pass/fail of e.g. all-half is the
                // recovery headline (fails unrefined, passes with IR).
                search::Config deepCfg(tuner.clusterCount());
                for (std::size_t c = 0; c < tuner.clusterCount(); ++c)
                    deepCfg.setLevel(
                        c, static_cast<std::uint8_t>(
                               tunerOptions.ladder.maxLevel()));
                search::Evaluation deepEval =
                    tuner.evaluateClusterConfig(deepCfg, 1);

                for (const std::string& code : strategies) {
                    core::TuneOutcome outcome = tuner.tune(code);
                    LadderRun run;
                    run.benchmark = name;
                    run.ladder = spec;
                    run.strategy = code;
                    run.refine = refine;
                    run.ev = outcome.search.evaluated;
                    run.winner = outcome.clusterConfig.toString();
                    run.improved = outcome.search.foundImprovement;
                    std::size_t deepestLevel = 0;
                    for (std::size_t c = 0;
                         c < outcome.clusterConfig.size(); ++c) {
                        std::size_t level =
                            outcome.clusterConfig.level(c);
                        deepestLevel = std::max(deepestLevel, level);
                        if (level >= 2)
                            ++run.sub32;
                    }
                    run.deepest = runtime::precisionName(
                        tunerOptions.ladder.at(deepestLevel));
                    run.speedup = outcome.finalSpeedup;
                    run.quality = outcome.finalQualityLoss;
                    run.deepPass = deepEval.passed();
                    run.deepQuality = deepEval.qualityLoss;
                    runs.push_back(run);

                    table.addRow(
                        {name, spec, code, refine ? "on" : "off",
                         support::Table::cell(
                             static_cast<long>(run.ev)),
                         run.winner, run.deepest,
                         support::Table::cell(
                             static_cast<long>(run.sub32)),
                         support::Table::cell(run.speedup, 2),
                         benchutil::qualityNano(run.quality),
                         run.deepPass ? "pass" : "FAIL",
                         benchutil::qualityNano(run.deepQuality)});
                }
            }
        }
    }

    std::cout << "Precision-ladder campaigns (threshold "
              << options.tuner.threshold << ", budget "
              << options.tuner.budget.maxEvaluations
              << ", quality in 1e-9 units)\n";
    benchutil::emit(table, options);

    using support::json::Value;
    Value doc = Value::object();
    doc.set("threshold", Value::number(options.tuner.threshold));
    doc.set("budget",
            Value::number(static_cast<double>(
                options.tuner.budget.maxEvaluations)));
    Value rows = Value::array();
    for (const LadderRun& run : runs) {
        Value row = Value::object();
        row.set("benchmark", Value::string(run.benchmark));
        row.set("ladder", Value::string(run.ladder));
        row.set("strategy", Value::string(run.strategy));
        row.set("refine", Value::boolean(run.refine));
        row.set("ev", Value::number(static_cast<double>(run.ev)));
        row.set("winner", Value::string(run.winner));
        row.set("deepest", Value::string(run.deepest));
        row.set("sub32_clusters",
                Value::number(static_cast<double>(run.sub32)));
        row.set("speedup", Value::number(run.speedup));
        row.set("quality", Value::number(run.quality));
        row.set("improved", Value::boolean(run.improved));
        row.set("deep_config_passes", Value::boolean(run.deepPass));
        row.set("deep_config_quality",
                Value::number(run.deepQuality));
        rows.push(std::move(row));
    }
    doc.set("runs", std::move(rows));
    std::ofstream out(jsonPath);
    if (!out)
        support::fatal("cannot open --json output file");
    out << doc.dump(2) << '\n';
    return 0;
}
