/**
 * @file
 * Ablation: the value of Typeforge clustering (paper Insight 1).
 *
 * Runs delta-debugging twice per application: once over the cluster
 * space (the suite's default) and once over raw variables with no
 * cluster information — where any configuration splitting a cluster
 * is a compile failure that costs search effort without ever running.
 *
 * Expected shape: the no-clustering run attempts far more
 * configurations (evaluated + compile failures) for the same or worse
 * final speedup, confirming that "preprocessing the application source
 * code to group variables into clusters increases the effectiveness
 * of search algorithms" (paper Section VII).
 */

#include "bench/bench_util.h"
#include "search/delta_debug.h"

int
main(int argc, char** argv)
{
    using namespace hpcmixp;
    auto options = benchutil::parseOptions(argc, argv);
    options.tuner.threshold = 1e-8;

    std::cout << "Ablation: DD with vs without cluster information"
                 " (threshold 1e-8)\n";
    support::Table table({"application", "mode", "sites", "evaluated",
                          "compile-fails", "speedup"});
    auto& registry = benchmarks::BenchmarkRegistry::instance();
    for (const auto& name : registry.applicationNames()) {
        auto bench = registry.create(name);
        core::BenchmarkTuner tuner(*bench, options.tuner);
        search::DeltaDebugSearch dd;

        auto clustered = search::runSearch(
            tuner.clusterProblem(), dd, options.tuner.budget);
        table.addRow(
            {name, "clusters",
             support::Table::cell(
                 static_cast<long>(tuner.clusterCount())),
             support::Table::cell(
                 static_cast<long>(clustered.evaluated)),
             support::Table::cell(
                 static_cast<long>(clustered.compileFailures)),
             support::Table::cell(
                 clustered.bestEvaluation.speedup, 2)});

        auto raw = search::runSearch(tuner.variableProblem(), dd,
                                     options.tuner.budget);
        table.addRow(
            {name, "variables",
             support::Table::cell(
                 static_cast<long>(tuner.variableCount())),
             support::Table::cell(static_cast<long>(raw.evaluated)),
             support::Table::cell(
                 static_cast<long>(raw.compileFailures)),
             support::Table::cell(raw.bestEvaluation.speedup, 2)});
    }
    benchutil::emit(table, options);
    return 0;
}
